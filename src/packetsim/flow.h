// One TCP-like flow: sender, receiver, and the feedback loop between them.
//
// The transport implements the mechanisms BBR and loss-based CCAs rely on:
//  * cumulative + selective acknowledgment (every delivered packet echoes
//    its own sequence number — an idealized per-packet SACK),
//  * RTT sampling with Karn's rule (no samples from retransmissions),
//  * Linux-style delivery-rate samples (delivered-counter snapshots carried
//    in each packet, interval measured between snapshots),
//  * time-and-sequence loss marking (a packet is lost once a packet sent
//    later has been selectively acknowledged and the sequence gap exceeds
//    the reordering window — RACK-style),
//  * retransmission timeouts with exponential backoff,
//  * optional pacing (BBR) or pure ACK clocking (Reno/CUBIC).
//
// The return path is a fixed delay (the dumbbell's ACK direction is never
// congested, §4.1.3).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>

#include "common/stats.h"
#include "packetsim/cca_api.h"
#include "packetsim/event_queue.h"
#include "packetsim/link.h"
#include "packetsim/packet.h"
#include "packetsim/pool.h"

namespace bbrmodel::packetsim {

/// Cumulative flow statistics (sender and receiver side).
struct FlowStats {
  std::int64_t data_sent = 0;        ///< data transmissions incl. retransmits
  std::int64_t retransmits = 0;
  std::int64_t delivered = 0;        ///< packets known delivered (sender view)
  std::int64_t lost_marked = 0;      ///< scoreboard loss marks
  std::int64_t rtos = 0;
  std::int64_t received = 0;         ///< packets seen by the receiver
  double srtt_s = 0.0;
  double min_rtt_s = 0.0;            ///< smallest RTT sample seen
  double jitter_ms = 0.0;            ///< mean |Δ one-way delay|, receiver side
};

/// A single sender→receiver flow through one or more bottleneck links.
class Flow {
 public:
  /// Where the sender injects packets (the first link of its path).
  using Egress = std::function<void(const Packet&)>;

  /// @param access_delay_s one-way delay sender↔switch (heterogeneous RTTs).
  /// @param start_time_s   when the first packet leaves.
  Flow(EventQueue& events, int id, double access_delay_s,
       BottleneckLink& link, std::unique_ptr<PacketCca> cca,
       double start_time_s = 0.0);

  /// Multi-hop variant: packets are handed to `egress` after the access
  /// delay; `path_prop_delay_s` is the one-way propagation of the whole
  /// forward path (the ACK return delay is access + path propagation).
  Flow(EventQueue& events, int id, double access_delay_s, Egress egress,
       double path_prop_delay_s, std::unique_ptr<PacketCca> cca,
       double start_time_s = 0.0);

  Flow(const Flow&) = delete;
  Flow& operator=(const Flow&) = delete;

  /// Register the start event; must be called once before running.
  void start();

  /// Entry point for packets reaching the receiver (wired by the network).
  void deliver_to_receiver(const Packet& packet);

  int id() const { return id_; }
  const PacketCca& cca() const { return *cca_; }
  FlowStats stats() const;

  /// Outstanding (sent, not yet acked or marked lost) packets.
  double inflight_pkts() const {
    return static_cast<double>(outstanding_.size());
  }

  /// Reordering window of the loss detector, in packets.
  static constexpr std::int64_t kReorderWindowPkts = 3;

 private:
  struct TxRecord {
    double sent_time = 0.0;
    bool retransmit = false;
  };

  // Per-packet bookkeeping lives in node-based containers; their tree
  // nodes come from a per-flow pool so the steady-state send/ack path
  // never touches malloc (the pool must be declared before them).
  using TxMap =
      std::map<std::int64_t, TxRecord, std::less<std::int64_t>,
               PoolAllocator<std::pair<const std::int64_t, TxRecord>>>;
  using SeqSet = std::set<std::int64_t, std::less<std::int64_t>,
                          PoolAllocator<std::int64_t>>;

  void try_send();
  void send_one();
  void handle_ack(std::int64_t cum, Packet echo);
  void update_rtt(double sample_s);
  void arm_rto();
  void fire_rto(std::uint64_t epoch);

  EventQueue& events_;
  NodePool pool_;  ///< backs outstanding_/retx_queue_/rcv_out_of_order_
  int id_;
  double access_delay_s_;
  Egress egress_;
  std::unique_ptr<PacketCca> cca_;
  double start_time_s_;
  double return_delay_s_;

  // Sender state.
  std::int64_t next_seq_ = 0;
  std::int64_t cum_acked_ = 0;          ///< receiver's next expected seq
  std::int64_t highest_sacked_ = -1;
  TxMap outstanding_{TxMap::allocator_type(&pool_)};
  SeqSet retx_queue_{SeqSet::allocator_type(&pool_)};  ///< ordered, dedup'd
  double delivered_ = 0.0;
  double delivered_time_ = 0.0;
  double first_tx_mstamp_ = 0.0;  ///< start of the send-side sample window
  double next_send_time_ = 0.0;
  bool send_scheduled_ = false;
  bool handshake_done_ = false;
  double srtt_ = 0.0;
  double rttvar_ = 0.0;
  double min_rtt_ = 0.0;
  double rto_ = 1.0;
  int rto_backoff_ = 0;
  std::uint64_t rto_epoch_ = 0;
  double rto_deadline_ = 0.0;

  // Receiver state.
  std::int64_t rcv_next_ = 0;
  SeqSet rcv_out_of_order_{SeqSet::allocator_type(&pool_)};
  double last_delay_s_ = 0.0;
  bool has_last_delay_ = false;
  RunningStats jitter_abs_delta_s_;

  // Counters.
  std::int64_t data_sent_ = 0;
  std::int64_t retransmits_ = 0;
  std::int64_t lost_marked_ = 0;
  std::int64_t rtos_ = 0;
  std::int64_t received_ = 0;
};

}  // namespace bbrmodel::packetsim
