#include "packetsim/flow.h"

#include <algorithm>
#include <cmath>

#include "common/require.h"

namespace bbrmodel::packetsim {

namespace {
constexpr double kMinRto = 0.2;   // conventional 200 ms floor
constexpr double kMaxRto = 60.0;
}  // namespace

Flow::Flow(EventQueue& events, int id, double access_delay_s,
           BottleneckLink& link, std::unique_ptr<PacketCca> cca,
           double start_time_s)
    : Flow(events, id, access_delay_s,
           [&link](const Packet& pkt) { link.offer(pkt); },
           link.prop_delay_s(), std::move(cca), start_time_s) {}

Flow::Flow(EventQueue& events, int id, double access_delay_s, Egress egress,
           double path_prop_delay_s, std::unique_ptr<PacketCca> cca,
           double start_time_s)
    : events_(events),
      id_(id),
      access_delay_s_(access_delay_s),
      egress_(std::move(egress)),
      cca_(std::move(cca)),
      start_time_s_(start_time_s) {
  BBRM_REQUIRE_MSG(cca_ != nullptr, "a congestion controller is required");
  BBRM_REQUIRE_MSG(egress_ != nullptr, "an egress is required");
  BBRM_REQUIRE_MSG(access_delay_s >= 0.0, "delay must be non-negative");
  BBRM_REQUIRE_MSG(path_prop_delay_s >= 0.0, "delay must be non-negative");
  return_delay_s_ = path_prop_delay_s + access_delay_s_;
}

void Flow::start() {
  events_.schedule_at(start_time_s_, [this] {
    cca_->on_start(events_.now());
    // Connection setup: a SYN-analogue probe measures the first RTT before
    // any data flows (real TCP does exactly this; BBR derives its initial
    // pacing from the handshake RTT).
    Packet syn;
    syn.flow = id_;
    syn.handshake = true;
    syn.sent_time = events_.now();
    events_.schedule_in(access_delay_s_, [this, syn] { egress_(syn); });
    // If the SYN is dropped (full buffer at start), retry like a SYN timer.
    events_.schedule_in(1.0, [this] {
      if (!handshake_done_) {
        handshake_done_ = true;  // give up on a clean sample, just start
        try_send();
      }
    });
  });
}

void Flow::try_send() {
  if (!handshake_done_) return;  // data waits for the connection handshake
  if (send_scheduled_) return;
  if (inflight_pkts() + 1.0 > cca_->cwnd_pkts() + 1e-9) return;
  const double at = std::max(events_.now(), next_send_time_);
  send_scheduled_ = true;
  events_.schedule_at(at, [this] {
    send_scheduled_ = false;
    send_one();
    try_send();
  });
}

void Flow::send_one() {
  if (inflight_pkts() + 1.0 > cca_->cwnd_pkts() + 1e-9) return;

  // Prefer retransmissions; skip entries the receiver already has.
  std::int64_t seq = -1;
  bool retx = false;
  while (!retx_queue_.empty()) {
    const std::int64_t cand = *retx_queue_.begin();
    retx_queue_.erase(retx_queue_.begin());
    if (cand >= cum_acked_) {
      seq = cand;
      retx = true;
      break;
    }
  }
  if (seq < 0) seq = next_seq_++;

  const double now = events_.now();
  if (outstanding_.empty()) {
    // Pipe was empty: a fresh rate-sample window starts here (tcp_rate.c).
    first_tx_mstamp_ = now;
    delivered_time_ = now;
  }
  Packet pkt;
  pkt.flow = id_;
  pkt.seq = seq;
  pkt.retransmit = retx;
  pkt.sent_time = now;
  pkt.delivered_at_send = delivered_;
  pkt.delivered_time_at_send = delivered_time_;
  pkt.first_tx_at_send = first_tx_mstamp_;

  outstanding_[seq] = TxRecord{now, retx};
  ++data_sent_;
  if (retx) ++retransmits_;

  const double pace = cca_->pacing_pps();
  if (pace > 0.0) {
    next_send_time_ = std::max(now, next_send_time_) + 1.0 / pace;
  } else {
    next_send_time_ = now;
  }

  events_.schedule_in(access_delay_s_, [this, pkt] { egress_(pkt); });
  arm_rto();
}

void Flow::deliver_to_receiver(const Packet& packet) {
  const double now = events_.now();
  if (packet.handshake) {
    const Packet echo = packet;
    events_.schedule_in(return_delay_s_, [this, echo] {
      if (handshake_done_) return;
      handshake_done_ = true;
      update_rtt(events_.now() - echo.sent_time);
      AckEvent ack;
      ack.now = events_.now();
      ack.rtt_s = events_.now() - echo.sent_time;
      cca_->on_ack(ack);  // hand the clean RTT sample to the CCA
      try_send();
    });
    return;
  }
  ++received_;

  // Receiver-side jitter: |Δ one-way delay| of consecutive arrivals.
  const double delay = now - packet.sent_time;
  if (has_last_delay_) jitter_abs_delta_s_.add(std::abs(delay - last_delay_s_));
  last_delay_s_ = delay;
  has_last_delay_ = true;

  // Reassembly state → cumulative ACK value.
  if (packet.seq == rcv_next_) {
    ++rcv_next_;
    while (!rcv_out_of_order_.empty() &&
           *rcv_out_of_order_.begin() == rcv_next_) {
      rcv_out_of_order_.erase(rcv_out_of_order_.begin());
      ++rcv_next_;
    }
  } else if (packet.seq > rcv_next_) {
    rcv_out_of_order_.insert(packet.seq);
  }  // duplicates below rcv_next_ are ignored

  const std::int64_t cum = rcv_next_;
  const Packet echo = packet;  // the ACK echoes the packet's snapshots
  events_.schedule_in(return_delay_s_,
                      [this, cum, echo] { handle_ack(cum, echo); });
}

void Flow::handle_ack(std::int64_t cum, Packet echo) {
  const double now = events_.now();
  int newly = 0;

  // Cumulative part: everything below `cum` is delivered.
  cum_acked_ = std::max(cum_acked_, cum);
  for (auto it = outstanding_.begin();
       it != outstanding_.end() && it->first < cum;) {
    it = outstanding_.erase(it);
    ++newly;
  }
  // Selective part: the echoed packet itself.
  if (auto it = outstanding_.find(echo.seq); it != outstanding_.end()) {
    outstanding_.erase(it);
    ++newly;
  }

  if (newly > 0) {
    delivered_ += newly;
    delivered_time_ = now;
    rto_backoff_ = 0;
    arm_rto();
  }

  // RTT (Karn's rule: never from retransmitted segments).
  double rtt_sample = 0.0;
  if (!echo.retransmit) {
    rtt_sample = now - echo.sent_time;
    update_rtt(rtt_sample);
  }

  // Delivery-rate sample from the delivered-counter snapshots. The interval
  // is the larger of the send-side span and the ACK-side span (tcp_rate.c),
  // so neither ACK compression nor send bursts inflate the estimate.
  double rate_sample = 0.0;
  const double ack_span = now - echo.delivered_time_at_send;
  const double send_span = echo.sent_time - echo.first_tx_at_send;
  const double interval = std::max(ack_span, send_span);
  if (interval > 1e-12 && delivered_ > echo.delivered_at_send) {
    rate_sample = (delivered_ - echo.delivered_at_send) / interval;
  }
  // Advance the send-side sampling window (tcp_rate_skb_delivered).
  if (newly > 0) first_tx_mstamp_ = std::max(first_tx_mstamp_, echo.sent_time);

  // Loss marking: sequence gap beyond the reorder window AND the echoed
  // packet left the sender after the candidate did (shields fresh
  // retransmissions carrying old sequence numbers).
  highest_sacked_ = std::max(highest_sacked_, echo.seq);
  for (auto it = outstanding_.begin(); it != outstanding_.end();) {
    const bool gap = it->first + kReorderWindowPkts <= highest_sacked_;
    if (!gap) break;  // map is ordered; later seqs have smaller gaps
    if (it->second.sent_time < echo.sent_time) {
      const std::int64_t seq = it->first;
      it = outstanding_.erase(it);
      retx_queue_.insert(seq);
      ++lost_marked_;
      LossEvent ev;
      ev.now = now;
      ev.seq = seq;
      ev.inflight_pkts = inflight_pkts();
      ev.delivered_total = delivered_;
      cca_->on_loss(ev);
    } else {
      ++it;
    }
  }

  AckEvent ack;
  ack.now = now;
  ack.rtt_s = rtt_sample;
  ack.delivery_rate_pps = rate_sample;
  ack.newly_acked = newly;
  ack.delivered_total = delivered_;
  ack.acked_delivered_at_send = echo.delivered_at_send;
  ack.inflight_pkts = inflight_pkts();
  ack.ecn_ce = echo.ecn_ce;  // ECN echo (RFC 3168)
  cca_->on_ack(ack);

  try_send();
}

void Flow::update_rtt(double sample_s) {
  if (sample_s <= 0.0) return;
  min_rtt_ = min_rtt_ == 0.0 ? sample_s : std::min(min_rtt_, sample_s);
  if (srtt_ == 0.0) {
    srtt_ = sample_s;
    rttvar_ = sample_s / 2.0;
  } else {
    const double err = sample_s - srtt_;
    srtt_ += 0.125 * err;
    rttvar_ += 0.25 * (std::abs(err) - rttvar_);
  }
  rto_ = std::clamp(srtt_ + 4.0 * rttvar_, kMinRto, kMaxRto);
}

void Flow::arm_rto() {
  const double deadline =
      events_.now() + rto_ * std::exp2(static_cast<double>(rto_backoff_));
  rto_deadline_ = deadline;
  const std::uint64_t epoch = ++rto_epoch_;
  events_.schedule_at(deadline, [this, epoch] { fire_rto(epoch); });
}

void Flow::fire_rto(std::uint64_t epoch) {
  if (epoch != rto_epoch_) return;  // superseded by a newer arm
  if (outstanding_.empty()) return;

  ++rtos_;
  rto_backoff_ = std::min(rto_backoff_ + 1, 6);
  // Everything outstanding is presumed lost.
  for (const auto& [seq, rec] : outstanding_) {
    (void)rec;
    retx_queue_.insert(seq);
  }
  lost_marked_ += static_cast<std::int64_t>(outstanding_.size());
  outstanding_.clear();
  cca_->on_rto(events_.now());
  arm_rto();
  try_send();
}

FlowStats Flow::stats() const {
  FlowStats s;
  s.data_sent = data_sent_;
  s.retransmits = retransmits_;
  s.delivered = static_cast<std::int64_t>(delivered_);
  s.lost_marked = lost_marked_;
  s.rtos = rtos_;
  s.received = received_;
  s.srtt_s = srtt_;
  s.min_rtt_s = min_rtt_;
  s.jitter_ms = jitter_abs_delta_s_.mean() * 1e3;
  return s;
}

}  // namespace bbrmodel::packetsim
