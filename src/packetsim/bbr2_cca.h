// Packet-level BBRv2 (alpha, per the paper's §3.1 description and the IETF
// 104/106 presentations).
//
// Differences from BBRv1 implemented here:
//  * ProbeBW is a DOWN → CRUISE → REFILL → UP cycle. A new probe starts only
//    after min(62 RTTs, uniform 2–3 s wall time) spent cruising.
//  * Loss awareness: a per-round loss rate above 2 % ends the UP phase and
//    multiplicatively decreases inflight_hi by β = 0.3; losses while
//    cruising arm/decrease the short-term bound inflight_lo.
//  * inflight_hi (long-term) starts unset (∞): with deep buffers STARTUP
//    exits without loss and the window falls back to the generic 2·BDP cap —
//    exactly the Insight-5 bufferbloat mechanism the paper reports.
//  * Cruising keeps inflight at min(BDP, 0.85·inflight_hi) (15 % headroom).
//  * ProbeRTT restricts the window to BDP/2 (not 4 packets).
//  * The bandwidth estimate is the maximum delivery rate over the last two
//    probe cycles.
#pragma once

#include <cstdint>
#include <limits>

#include "common/rng.h"
#include "packetsim/cca_api.h"
#include "packetsim/windowed_filter.h"

namespace bbrmodel::packetsim {

class Bbr2Cca : public PacketCca {
 public:
  explicit Bbr2Cca(std::uint64_t seed = 1, double initial_window_pkts = 10.0);

  void on_start(double now) override;
  void on_ack(const AckEvent& ack) override;
  void on_loss(const LossEvent& loss) override;
  void on_rto(double now) override;

  double cwnd_pkts() const override;
  double pacing_pps() const override;
  std::string name() const override { return "BBRv2"; }

  enum class Mode {
    kStartup,
    kDrain,
    kProbeBwDown,
    kProbeBwCruise,
    kProbeBwRefill,
    kProbeBwUp,
    kProbeRtt,
  };
  Mode mode() const { return mode_; }
  double bw_pps() const;
  double rtprop_s() const { return min_rtt_; }
  double inflight_hi_pkts() const { return inflight_hi_; }
  double inflight_lo_pkts() const { return inflight_lo_; }
  bool inflight_hi_set() const {
    return inflight_hi_ < std::numeric_limits<double>::infinity();
  }

  static constexpr double kHighGain = 2.885;
  static constexpr double kUpGain = 1.25;
  static constexpr double kDownGain = 0.75;
  static constexpr double kBeta = 0.3;       ///< MD factor: hi ← (1−β)·hi
  static constexpr double kHeadroom = 0.15;  ///< cruise backs off 15 % of hi
  static constexpr double kLossThresh = 0.02;
  static constexpr double kProbeRttDuration = 0.2;
  static constexpr double kMinRttExpiry = 10.0;
  static constexpr int kProbeWaitRounds = 62;

 private:
  double bdp_pkts() const;
  double pacing_gain() const;
  /// min(BDP, (1 − headroom)·inflight_hi): DOWN target and cruise bound.
  double drain_target_pkts() const;
  void start_down(double now);
  void check_full_pipe();
  void update_round(const AckEvent& ack);
  void round_loss_bookkeeping();
  void maybe_enter_probe_rtt(const AckEvent& ack);
  void handle_probe_rtt(const AckEvent& ack);

  Rng rng_;
  double initial_window_;

  Mode mode_ = Mode::kStartup;
  WindowedMax startup_bw_filter_;
  double cycle_max_bw_ = 0.0;
  double prev_cycle_max_bw_ = 0.0;
  bool in_probe_bw_ = false;

  double min_rtt_ = 0.0;
  double min_rtt_stamp_ = 0.0;

  // Rounds.
  double next_round_delivered_ = 0.0;
  std::int64_t round_count_ = 0;
  bool round_start_ = false;

  // Full pipe (STARTUP exit).
  double full_bw_ = 0.0;
  int full_bw_count_ = 0;
  bool filled_pipe_ = false;

  // Loss accounting per round.
  std::int64_t losses_in_round_ = 0;
  std::int64_t delivered_in_round_ = 0;
  double loss_rate_round_ = 0.0;
  std::int64_t last_lo_reduction_round_ = -1;

  // Probe cycle bookkeeping.
  double cycle_start_time_ = 0.0;
  std::int64_t cycle_start_round_ = 0;
  double probe_wall_gate_s_ = 2.5;
  std::int64_t refill_start_round_ = 0;
  std::int64_t up_start_round_ = 0;

  // Inflight bounds.
  double inflight_hi_ = std::numeric_limits<double>::infinity();
  double inflight_lo_ = std::numeric_limits<double>::infinity();

  // PROBE_RTT.
  double probe_rtt_done_stamp_ = -1.0;
};

}  // namespace bbrmodel::packetsim
