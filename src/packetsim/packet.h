// The packet record exchanged between sender, bottleneck, and receiver.
#pragma once

#include <cstdint>

namespace bbrmodel::packetsim {

/// One data packet (fixed size: one MSS). ACKs are modelled as zero-cost
/// control messages (the return path is uncongested in the paper's dumbbell).
struct Packet {
  int flow = -1;              ///< sending flow index
  std::int64_t seq = -1;      ///< packet sequence number (packets, not bytes)
  bool retransmit = false;    ///< this transmission is a retransmission
  bool handshake = false;     ///< connection-setup probe (SYN analogue)
  bool ecn_ce = false;        ///< congestion-experienced mark (RFC 3168)
  double sent_time = 0.0;     ///< departure time from the sender

  // Delivery-rate sampling snapshots (Linux-style rate samples): the
  // sender's delivered counter and its timestamp when this packet left, plus
  // the start of the send-side sampling window (tcp_rate.c semantics — the
  // sample interval is max(send span, ack span) to avoid overestimating the
  // rate under ACK compression or send bursts).
  double delivered_at_send = 0.0;
  double delivered_time_at_send = 0.0;
  double first_tx_at_send = 0.0;
};

}  // namespace bbrmodel::packetsim
