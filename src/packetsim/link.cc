#include "packetsim/link.h"

#include <algorithm>
#include <limits>

#include "common/require.h"

namespace bbrmodel::packetsim {

BottleneckLink::BottleneckLink(EventQueue& events, double capacity_pps,
                               double prop_delay_s, std::unique_ptr<Aqm> aqm,
                               Rng& rng, Deliver deliver, double buffer_pkts)
    : events_(events),
      capacity_pps_(capacity_pps),
      prop_delay_s_(prop_delay_s),
      aqm_(std::move(aqm)),
      rng_(rng),
      deliver_(std::move(deliver)),
      capacity_room_pkts_(buffer_pkts > 0.0
                              ? buffer_pkts
                              : std::numeric_limits<double>::infinity()) {
  BBRM_REQUIRE_MSG(capacity_pps > 0.0, "capacity must be positive");
  BBRM_REQUIRE_MSG(prop_delay_s >= 0.0, "delay must be non-negative");
  BBRM_REQUIRE_MSG(aqm_ != nullptr, "an AQM is required");
  BBRM_REQUIRE_MSG(deliver_ != nullptr, "a delivery sink is required");
}

void BottleneckLink::account() {
  const double now = events_.now();
  stats_.queue_time_pkts_s +=
      static_cast<double>(queue_.size()) * (now - last_account_time_);
  last_account_time_ = now;
}

void BottleneckLink::flush_accounting() { account(); }

void BottleneckLink::offer(const Packet& packet) {
  account();
  ++stats_.arrived;
  Packet admitted = packet;
  if (aqm_->should_drop(events_.now(), queue_pkts(), rng_)) {
    // ECN: a probabilistic "drop" becomes a CE mark while the buffer
    // physically has room (RFC 3168); a genuinely full buffer still drops.
    const bool has_room = queue_pkts() + 1.0 <= capacity_room_pkts_;
    if (aqm_->ecn_capable() && has_room) {
      admitted.ecn_ce = true;
      ++stats_.marked;
    } else {
      ++stats_.dropped;
      return;
    }
  }
  queue_.push_back(admitted);
  stats_.max_queue_pkts = std::max(stats_.max_queue_pkts, queue_pkts());
  if (!busy_) start_service();
}

void BottleneckLink::start_service() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  account();
  const Packet pkt = queue_.front();
  queue_.pop_front();
  const double service = 1.0 / capacity_pps_;
  stats_.busy_time_s += service;
  events_.schedule_in(service, [this, pkt] {
    ++stats_.served;
    // Hand off to propagation; service next packet immediately.
    events_.schedule_in(prop_delay_s_, [this, pkt] { deliver_(pkt); });
    start_service();
  });
}

}  // namespace bbrmodel::packetsim
