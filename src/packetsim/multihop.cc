#include "packetsim/multihop.h"

#include <algorithm>

#include "common/require.h"
#include "common/stats.h"

namespace bbrmodel::packetsim {

MultiHopNet::MultiHopNet(std::uint64_t seed) : rng_(seed) {}

std::size_t MultiHopNet::add_link(double capacity_pps, double prop_delay_s,
                                  double buffer_pkts, AqmKind aqm) {
  BBRM_REQUIRE_MSG(!started_, "cannot add links after run()");
  const std::size_t idx = links_.size();
  links_.push_back(std::make_unique<BottleneckLink>(
      events_, capacity_pps, prop_delay_s, make_aqm(aqm, buffer_pkts), rng_,
      [this, idx](const Packet& pkt) { forward(pkt, idx); }, buffer_pkts));
  return idx;
}

std::size_t MultiHopNet::add_flow(double access_delay_s,
                                  std::vector<std::size_t> path,
                                  std::unique_ptr<PacketCca> cca,
                                  double start_time_s) {
  BBRM_REQUIRE_MSG(!started_, "cannot add flows after run()");
  BBRM_REQUIRE_MSG(!path.empty(), "a flow needs at least one link");
  for (std::size_t l : path) {
    BBRM_REQUIRE_MSG(l < links_.size(), "path references unknown link");
  }
  const auto id = static_cast<int>(flows_.size());
  double path_prop = 0.0;
  for (std::size_t l : path) path_prop += links_[l]->prop_delay_s();

  BottleneckLink* first = links_[path.front()].get();
  flows_.push_back(std::make_unique<Flow>(
      events_, id, access_delay_s,
      [first](const Packet& pkt) { first->offer(pkt); }, path_prop,
      std::move(cca), start_time_s));
  routes_.push_back(Route{std::move(path)});
  access_delay_.push_back(access_delay_s);
  return flows_.size() - 1;
}

void MultiHopNet::forward(const Packet& packet, std::size_t arrived_link) {
  BBRM_ASSERT(packet.flow >= 0 &&
              static_cast<std::size_t>(packet.flow) < flows_.size());
  const auto& route = routes_[static_cast<std::size_t>(packet.flow)];
  // Position of the link the packet just left.
  std::size_t pos = route.links.size();
  for (std::size_t k = 0; k < route.links.size(); ++k) {
    if (route.links[k] == arrived_link) {
      pos = k;
      break;
    }
  }
  BBRM_ASSERT(pos < route.links.size());
  if (pos + 1 < route.links.size()) {
    // Propagation already applied by the link; hand to the next hop now.
    links_[route.links[pos + 1]]->offer(packet);
  } else {
    flows_[static_cast<std::size_t>(packet.flow)]->deliver_to_receiver(packet);
  }
}

void MultiHopNet::run(double duration_s) {
  BBRM_REQUIRE_MSG(!flows_.empty(), "need at least one flow");
  BBRM_REQUIRE_MSG(duration_s > 0.0, "duration must be positive");
  if (!started_) {
    started_ = true;
    for (auto& f : flows_) f->start();
  }
  duration_s_ += duration_s;
  events_.run_until(duration_s_);
  for (auto& l : links_) l->flush_accounting();
}

const Flow& MultiHopNet::flow(std::size_t i) const {
  BBRM_REQUIRE(i < flows_.size());
  return *flows_[i];
}

const BottleneckLink& MultiHopNet::link(std::size_t l) const {
  BBRM_REQUIRE(l < links_.size());
  return *links_[l];
}

std::vector<double> MultiHopNet::mean_rates_pps() const {
  BBRM_REQUIRE_MSG(duration_s_ > 0.0, "experiment has not run");
  std::vector<double> rates(flows_.size());
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    rates[i] =
        static_cast<double>(flows_[i]->stats().data_sent) / duration_s_;
  }
  return rates;
}

double MultiHopNet::jain() const { return jain_index(mean_rates_pps()); }

}  // namespace bbrmodel::packetsim
