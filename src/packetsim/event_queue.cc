#include "packetsim/event_queue.h"

#include <utility>

namespace bbrmodel::packetsim {

void EventQueue::schedule_at(double t, Action action) {
  BBRM_REQUIRE_MSG(t >= now_ - 1e-12, "cannot schedule into the past");
  queue_.push(Entry{std::max(t, now_), next_seq_++, std::move(action)});
}

void EventQueue::run_until(double t_end) {
  while (!queue_.empty() && queue_.top().time <= t_end) {
    // Copy out before pop: the action may schedule further events.
    Entry e = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    now_ = e.time;
    ++executed_;
    e.action();
  }
  now_ = std::max(now_, t_end);
}

}  // namespace bbrmodel::packetsim
