#include "packetsim/event_queue.h"

namespace bbrmodel::packetsim {

EventQueue::~EventQueue() {
  // Destroy captures of events that never ran (simulation stopped early).
  while (!queue_.empty()) {
    Node* node = queue_.top().node;
    queue_.pop();
    if (node->destroy != nullptr) node->destroy(node->storage);
  }
  // chunks_ frees the slabs themselves.
}

EventQueue::Node* EventQueue::acquire() {
  if (free_ == nullptr) {
    chunks_.push_back(std::make_unique<Node[]>(kChunkNodes));
    Node* slab = chunks_.back().get();
    for (std::size_t i = 0; i < kChunkNodes; ++i) {
      slab[i].next_free = free_;
      free_ = &slab[i];
    }
  }
  Node* node = free_;
  free_ = node->next_free;
  return node;
}

void EventQueue::release(Node* node) {
  if (node->destroy != nullptr) node->destroy(node->storage);
  node->next_free = free_;
  free_ = node;
}

void EventQueue::run_until(double t_end) {
  while (!queue_.empty() && queue_.top().time <= t_end) {
    const Entry e = queue_.top();
    queue_.pop();
    now_ = e.time;
    ++executed_;
    e.node->invoke(e.node->storage);
    // The closure may have scheduled further events (pulling nodes off the
    // free list), but it cannot release its own node — recycle it now.
    release(e.node);
  }
  now_ = std::max(now_, t_end);
}

}  // namespace bbrmodel::packetsim
