#include "packetsim/bbr2_cca.h"

#include <algorithm>
#include <cmath>

#include "common/require.h"

namespace bbrmodel::packetsim {

Bbr2Cca::Bbr2Cca(std::uint64_t seed, double initial_window_pkts)
    : rng_(seed),
      initial_window_(initial_window_pkts),
      startup_bw_filter_(10.0) {
  BBRM_REQUIRE_MSG(initial_window_pkts >= 4.0,
                   "BBR needs an initial window of at least 4 packets");
}

void Bbr2Cca::on_start(double now) {
  min_rtt_stamp_ = now;
  cycle_start_time_ = now;
  probe_wall_gate_s_ = rng_.uniform(2.0, 3.0);
}

double Bbr2Cca::bw_pps() const {
  if (in_probe_bw_) return std::max(cycle_max_bw_, prev_cycle_max_bw_);
  return startup_bw_filter_.best();
}

double Bbr2Cca::bdp_pkts() const {
  const double bw = bw_pps();
  if (bw <= 0.0 || min_rtt_ <= 0.0) return initial_window_;
  return bw * min_rtt_;
}

double Bbr2Cca::drain_target_pkts() const {
  return std::min(bdp_pkts(), (1.0 - kHeadroom) * inflight_hi_);
}

double Bbr2Cca::pacing_gain() const {
  switch (mode_) {
    case Mode::kStartup:
      return kHighGain;
    case Mode::kDrain:
      return 1.0 / kHighGain;
    case Mode::kProbeBwDown:
      return kDownGain;
    case Mode::kProbeBwCruise:
    case Mode::kProbeBwRefill:
      return 1.0;
    case Mode::kProbeBwUp:
      return kUpGain;
    case Mode::kProbeRtt:
      return 1.0;
  }
  return 1.0;
}

double Bbr2Cca::cwnd_pkts() const {
  const double bdp = bdp_pkts();
  const double generic = 2.0 * bdp;  // the BBR safeguard window (Eq. 31)
  double bound = generic;
  switch (mode_) {
    case Mode::kStartup:
    case Mode::kDrain:
      bound = std::max(kHighGain * bdp, initial_window_);
      break;
    case Mode::kProbeBwDown:
    case Mode::kProbeBwCruise:
      // Cruise/down honor headroom on hi and the short-term lo bound.
      bound = std::min({generic, (1.0 - kHeadroom) * inflight_hi_,
                        inflight_lo_});
      break;
    case Mode::kProbeBwRefill:
      bound = std::min(generic, inflight_hi_);
      break;
    case Mode::kProbeBwUp: {
      // inflight_hi plus a per-round doubling allowance (probe growth).
      const double rounds_in_up =
          static_cast<double>(std::max<std::int64_t>(0, round_count_ -
                                                            up_start_round_));
      const double allowance = std::exp2(std::min(rounds_in_up, 20.0));
      bound = std::min(generic, inflight_hi_ + allowance);
      break;
    }
    case Mode::kProbeRtt:
      bound = std::max(4.0, 0.5 * bdp);  // Eq. (32): half the estimated BDP
      break;
  }
  return std::max(4.0, bound);
}

double Bbr2Cca::pacing_pps() const {
  const double bw = bw_pps();
  if (bw <= 0.0) {
    // No bandwidth sample yet: pace the initial window over the handshake
    // RTT (Linux derives the initial pacing rate the same way).
    if (min_rtt_ > 0.0) return kHighGain * initial_window_ / min_rtt_;
    return 0.0;
  }
  return pacing_gain() * bw;
}

void Bbr2Cca::check_full_pipe() {
  if (filled_pipe_ || !round_start_) return;
  const double bw = bw_pps();
  if (bw > full_bw_ * 1.25) {
    full_bw_ = bw;
    full_bw_count_ = 0;
    return;
  }
  if (++full_bw_count_ >= 3) filled_pipe_ = true;
}

void Bbr2Cca::update_round(const AckEvent& ack) {
  round_start_ = false;
  if (ack.newly_acked > 0 &&
      ack.acked_delivered_at_send >= next_round_delivered_) {
    next_round_delivered_ = ack.delivered_total;
    ++round_count_;
    round_start_ = true;
    round_loss_bookkeeping();
  }
  delivered_in_round_ += ack.newly_acked;
}

void Bbr2Cca::round_loss_bookkeeping() {
  const double total =
      static_cast<double>(losses_in_round_ + delivered_in_round_);
  loss_rate_round_ =
      total > 0.0 ? static_cast<double>(losses_in_round_) / total : 0.0;
  losses_in_round_ = 0;
  delivered_in_round_ = 0;
}

void Bbr2Cca::start_down(double now) {
  mode_ = Mode::kProbeBwDown;
  cycle_start_time_ = now;
  cycle_start_round_ = round_count_;
  probe_wall_gate_s_ = rng_.uniform(2.0, 3.0);
  prev_cycle_max_bw_ = cycle_max_bw_;
  cycle_max_bw_ = 0.0;
}

void Bbr2Cca::maybe_enter_probe_rtt(const AckEvent& ack) {
  if (mode_ == Mode::kProbeRtt) return;
  if (ack.now - min_rtt_stamp_ > kMinRttExpiry) {
    mode_ = Mode::kProbeRtt;
    probe_rtt_done_stamp_ = -1.0;
  }
}

void Bbr2Cca::handle_probe_rtt(const AckEvent& ack) {
  const double target = std::max(4.0, 0.5 * bdp_pkts());
  if (probe_rtt_done_stamp_ < 0.0 && ack.inflight_pkts <= target) {
    probe_rtt_done_stamp_ = ack.now + kProbeRttDuration;
  }
  if (probe_rtt_done_stamp_ >= 0.0 && ack.now >= probe_rtt_done_stamp_) {
    min_rtt_stamp_ = ack.now;
    if (filled_pipe_) {
      start_down(ack.now);
      mode_ = Mode::kProbeBwCruise;  // no self-inflicted queue to drain
    } else {
      mode_ = Mode::kStartup;
    }
  }
}

void Bbr2Cca::on_ack(const AckEvent& ack) {
  update_round(ack);

  // ECN (paper §3.1: BBRv2 reacts to "loss and ECN signals"): CE marks feed
  // the per-round signal rate and the cruise-time short-term bound exactly
  // like losses, without any retransmission.
  if (ack.ecn_ce) {
    ++losses_in_round_;
    if (mode_ == Mode::kProbeBwCruise &&
        round_count_ != last_lo_reduction_round_) {
      last_lo_reduction_round_ = round_count_;
      const double base =
          inflight_lo_ < std::numeric_limits<double>::infinity()
              ? inflight_lo_
              : cwnd_pkts();
      inflight_lo_ = std::max(4.0, (1.0 - kBeta) * base);
    }
  }

  if (ack.delivery_rate_pps > 0.0) {
    startup_bw_filter_.update(static_cast<double>(round_count_),
                              ack.delivery_rate_pps);
    cycle_max_bw_ = std::max(cycle_max_bw_, ack.delivery_rate_pps);
  }

  // Strictly-smaller samples only (see Bbr1Cca: tie-refresh would suppress
  // ProbeRTT in a noiseless simulation).
  if (ack.rtt_s > 0.0 && (min_rtt_ == 0.0 || ack.rtt_s < min_rtt_ - 1e-9)) {
    min_rtt_ = ack.rtt_s;
    min_rtt_stamp_ = ack.now;
  }

  const double bdp = bdp_pkts();
  switch (mode_) {
    case Mode::kStartup: {
      check_full_pipe();
      // Loss-aware exit: persistent heavy loss ends STARTUP (v2 change).
      const bool loss_exit =
          round_start_ && loss_rate_round_ > kLossThresh &&
          ack.delivered_total > 10.0;
      if (loss_exit && !filled_pipe_) {
        filled_pipe_ = true;
        inflight_hi_ = std::max(4.0, ack.inflight_pkts);
      }
      if (filled_pipe_) mode_ = Mode::kDrain;
      break;
    }
    case Mode::kDrain:
      if (ack.inflight_pkts <= bdp) {
        in_probe_bw_ = true;
        prev_cycle_max_bw_ = startup_bw_filter_.best();
        cycle_max_bw_ = startup_bw_filter_.best();
        start_down(ack.now);
        mode_ = Mode::kProbeBwCruise;  // pipe is already drained
      }
      break;
    case Mode::kProbeBwDown:
      if (ack.inflight_pkts <= drain_target_pkts()) {
        mode_ = Mode::kProbeBwCruise;
      }
      break;
    case Mode::kProbeBwCruise: {
      const bool round_gate =
          round_count_ - cycle_start_round_ >= kProbeWaitRounds;
      const bool wall_gate =
          ack.now - cycle_start_time_ >= probe_wall_gate_s_;
      if (round_gate || wall_gate) {
        mode_ = Mode::kProbeBwRefill;
        refill_start_round_ = round_count_;
        inflight_lo_ = std::numeric_limits<double>::infinity();  // reset lo
      }
      break;
    }
    case Mode::kProbeBwRefill:
      if (round_count_ > refill_start_round_) {  // one full round of refill
        mode_ = Mode::kProbeBwUp;
        up_start_round_ = round_count_;
      }
      break;
    case Mode::kProbeBwUp: {
      // Raise the long-term bound to what the network demonstrably held.
      if (ack.inflight_pkts > inflight_hi_ &&
          loss_rate_round_ <= kLossThresh) {
        inflight_hi_ = ack.inflight_pkts;
      }
      const bool reached_target = ack.inflight_pkts >= 1.25 * bdp;
      const bool too_lossy = loss_rate_round_ > kLossThresh;
      if (reached_target || too_lossy) {
        if (too_lossy) {
          const double base = inflight_hi_set()
                                  ? inflight_hi_
                                  : std::max(4.0, ack.inflight_pkts);
          inflight_hi_ = std::max(4.0, (1.0 - kBeta) * base);
        }
        start_down(ack.now);
      }
      break;
    }
    case Mode::kProbeRtt:
      break;
  }

  if (mode_ == Mode::kProbeRtt) {
    handle_probe_rtt(ack);
  } else {
    maybe_enter_probe_rtt(ack);
  }
}

void Bbr2Cca::on_loss(const LossEvent& /*loss*/) {
  ++losses_in_round_;
  // Short-term bound while cruising (at most one decrease per round).
  if (mode_ == Mode::kProbeBwCruise &&
      round_count_ != last_lo_reduction_round_) {
    last_lo_reduction_round_ = round_count_;
    const double base = inflight_lo_ < std::numeric_limits<double>::infinity()
                            ? inflight_lo_
                            : cwnd_pkts();
    inflight_lo_ = std::max(4.0, (1.0 - kBeta) * base);
  }
}

void Bbr2Cca::on_rto(double now) {
  (void)now;
  // Conservative restart: collapse the short-term bound.
  inflight_lo_ = std::max(4.0, 0.5 * bdp_pkts());
}

}  // namespace bbrmodel::packetsim
