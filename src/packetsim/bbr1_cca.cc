#include "packetsim/bbr1_cca.h"

#include <algorithm>
#include <cmath>

#include "common/require.h"

namespace bbrmodel::packetsim {

namespace {
constexpr double kGainCycle[Bbr1Cca::kCycleLength] = {1.25, 0.75, 1.0, 1.0,
                                                      1.0,  1.0,  1.0, 1.0};
}

Bbr1Cca::Bbr1Cca(std::uint64_t seed, double initial_window_pkts)
    : rng_(seed),
      initial_window_(initial_window_pkts),
      bw_filter_(kBwFilterRounds) {
  BBRM_REQUIRE_MSG(initial_window_pkts >= 4.0,
                   "BBR needs an initial window of at least 4 packets");
}

void Bbr1Cca::on_start(double now) {
  min_rtt_stamp_ = now;
  // Random initial phase from the non-drain slots (the implementation picks
  // a random phase other than the 3/4 drain phase).
  do {
    cycle_index_ = rng_.uniform_int(0, kCycleLength - 1);
  } while (cycle_index_ == 1);
  cycle_stamp_ = now;
}

double Bbr1Cca::bdp_pkts() const {
  const double bw = bw_filter_.best();
  if (bw <= 0.0 || min_rtt_ <= 0.0) return initial_window_;
  return bw * min_rtt_;
}

double Bbr1Cca::pacing_gain() const {
  switch (mode_) {
    case Mode::kStartup:
      return kHighGain;
    case Mode::kDrain:
      return 1.0 / kHighGain;
    case Mode::kProbeBw:
      return kGainCycle[cycle_index_];
    case Mode::kProbeRtt:
      return 1.0;
  }
  return 1.0;
}

double Bbr1Cca::cwnd_pkts() const {
  if (mode_ == Mode::kProbeRtt) return kProbeRttCwnd;
  const double gain = mode_ == Mode::kStartup || mode_ == Mode::kDrain
                          ? kHighGain
                          : kCwndGain;
  return std::max(kProbeRttCwnd, gain * bdp_pkts());
}

double Bbr1Cca::pacing_pps() const {
  const double bw = bw_filter_.best();
  if (bw <= 0.0) {
    // No bandwidth sample yet: pace the initial window over the handshake
    // RTT (Linux derives the initial pacing rate the same way).
    if (min_rtt_ > 0.0) return kHighGain * initial_window_ / min_rtt_;
    return 0.0;
  }
  return pacing_gain() * bw;
}

void Bbr1Cca::check_full_pipe() {
  if (filled_pipe_ || !round_start_) return;
  const double bw = bw_filter_.best();
  if (bw > full_bw_ * 1.25) {
    full_bw_ = bw;
    full_bw_count_ = 0;
    return;
  }
  if (++full_bw_count_ >= 3) filled_pipe_ = true;
}

void Bbr1Cca::advance_cycle(const AckEvent& ack) {
  const double gain = kGainCycle[cycle_index_];
  bool advance = ack.now - cycle_stamp_ > min_rtt_;
  // Leave the drain phase as soon as the self-inflicted queue is gone.
  if (gain < 1.0 && ack.inflight_pkts <= bdp_pkts()) advance = true;
  if (advance) {
    cycle_index_ = (cycle_index_ + 1) % kCycleLength;
    cycle_stamp_ = ack.now;
  }
}

void Bbr1Cca::maybe_enter_probe_rtt(const AckEvent& ack) {
  if (mode_ == Mode::kProbeRtt) return;
  if (ack.now - min_rtt_stamp_ > kMinRttExpiry) {
    mode_ = Mode::kProbeRtt;
    probe_rtt_done_stamp_ = -1.0;
  }
}

void Bbr1Cca::handle_probe_rtt(const AckEvent& ack) {
  if (probe_rtt_done_stamp_ < 0.0 && ack.inflight_pkts <= kProbeRttCwnd) {
    probe_rtt_done_stamp_ = ack.now + kProbeRttDuration;
  }
  if (probe_rtt_done_stamp_ >= 0.0 && ack.now >= probe_rtt_done_stamp_) {
    min_rtt_stamp_ = ack.now;  // the estimate is fresh again
    if (filled_pipe_) {
      mode_ = Mode::kProbeBw;
      cycle_stamp_ = ack.now;
      do {
        cycle_index_ = rng_.uniform_int(0, kCycleLength - 1);
      } while (cycle_index_ == 1);
    } else {
      mode_ = Mode::kStartup;
    }
  }
}

void Bbr1Cca::on_ack(const AckEvent& ack) {
  // Packet-timed round detection.
  round_start_ = false;
  if (ack.newly_acked > 0 &&
      ack.acked_delivered_at_send >= next_round_delivered_) {
    next_round_delivered_ = ack.delivered_total;
    ++round_count_;
    round_start_ = true;
  }

  // BtlBw filter (round-timed window).
  if (ack.delivery_rate_pps > 0.0) {
    bw_filter_.update(static_cast<double>(round_count_),
                      ack.delivery_rate_pps);
  }

  // RTprop filter. Strictly-smaller samples refresh the staleness stamp:
  // in a noiseless simulation, refreshing on ties would keep the estimate
  // perpetually "fresh" and suppress ProbeRTT entirely (kernels see µs
  // noise that breaks such ties).
  if (ack.rtt_s > 0.0 &&
      (min_rtt_ == 0.0 || ack.rtt_s < min_rtt_ - 1e-9)) {
    min_rtt_ = ack.rtt_s;
    min_rtt_stamp_ = ack.now;
  }

  switch (mode_) {
    case Mode::kStartup:
      check_full_pipe();
      if (filled_pipe_) mode_ = Mode::kDrain;
      break;
    case Mode::kDrain:
      if (ack.inflight_pkts <= bdp_pkts()) {
        mode_ = Mode::kProbeBw;
        cycle_stamp_ = ack.now;
      }
      break;
    case Mode::kProbeBw:
      advance_cycle(ack);
      break;
    case Mode::kProbeRtt:
      break;
  }

  if (mode_ == Mode::kProbeRtt) {
    handle_probe_rtt(ack);
  } else {
    maybe_enter_probe_rtt(ack);
  }
}

void Bbr1Cca::on_loss(const LossEvent& loss) {
  (void)loss;  // BBRv1 does not react to loss — its defining property.
}

void Bbr1Cca::on_rto(double now) {
  (void)now;  // conservative: keep estimates; the filters age out naturally
}

}  // namespace bbrmodel::packetsim
