#include "packetsim/network.h"

#include <algorithm>
#include <cmath>

#include "common/require.h"
#include "common/stats.h"

namespace bbrmodel::packetsim {

std::unique_ptr<Aqm> make_aqm(AqmKind kind, double buffer_pkts,
                              RedThresholds red) {
  const double min_th = red.min_pkts > 0.0
                            ? std::min(red.min_pkts, 0.9 * buffer_pkts)
                            : std::max(1.0, 0.10 * buffer_pkts);
  const double max_th = red.max_pkts > min_th
                            ? std::min(red.max_pkts, buffer_pkts)
                            : std::max(min_th + 1.0, 0.5 * buffer_pkts);
  switch (kind) {
    case AqmKind::kDropTail:
      return std::make_unique<DropTailAqm>(buffer_pkts);
    case AqmKind::kRed:
      // Classic thresholded RED, as a real tc-red deployment would be
      // configured (the paper's experiments use mininet/tc RED; the fluid
      // model's idealized p = q/B is intentionally different — §4.2).
      return std::make_unique<FloydRedAqm>(buffer_pkts, min_th, max_th, 0.1);
    case AqmKind::kFloydRed:
      return std::make_unique<FloydRedAqm>(buffer_pkts, min_th, max_th, 0.1);
    case AqmKind::kRedEcn:
      // Faster queue average than the drop-based RED: marking must engage
      // before slow-start bursts overrun the physical buffer.
      return std::make_unique<FloydRedAqm>(buffer_pkts, min_th, max_th, 0.1,
                                           0.02, /*ecn=*/true);
  }
  return nullptr;
}

std::string to_string(AqmKind kind) {
  switch (kind) {
    case AqmKind::kDropTail:
      return "drop-tail";
    case AqmKind::kRed:
      return "RED";
    case AqmKind::kFloydRed:
      return "RED(Floyd)";
    case AqmKind::kRedEcn:
      return "RED+ECN";
  }
  return "unknown";
}

DumbbellNet::DumbbellNet(double capacity_pps, double bottleneck_delay_s,
                         double buffer_pkts, AqmKind aqm, std::uint64_t seed,
                         double sample_interval_s, RedThresholds red)
    : rng_(seed),
      buffer_pkts_(buffer_pkts),
      sample_interval_s_(sample_interval_s) {
  BBRM_REQUIRE_MSG(buffer_pkts >= 1.0, "buffer must hold at least one packet");
  BBRM_REQUIRE_MSG(sample_interval_s > 0.0, "sample interval must be positive");
  link_ = std::make_unique<BottleneckLink>(
      events_, capacity_pps, bottleneck_delay_s,
      make_aqm(aqm, buffer_pkts, red), rng_,
      [this](const Packet& pkt) {
        BBRM_ASSERT(pkt.flow >= 0 &&
                    static_cast<std::size_t>(pkt.flow) < flows_.size());
        flows_[static_cast<std::size_t>(pkt.flow)]->deliver_to_receiver(pkt);
      },
      buffer_pkts);
  trace_.sample_interval_s = sample_interval_s;
}

std::size_t DumbbellNet::add_flow(double access_delay_s,
                                  std::unique_ptr<PacketCca> cca,
                                  double start_time_s) {
  BBRM_REQUIRE_MSG(!started_, "cannot add flows after run()");
  const auto id = static_cast<int>(flows_.size());
  flows_.push_back(std::make_unique<Flow>(events_, id, access_delay_s, *link_,
                                          std::move(cca), start_time_s));
  return flows_.size() - 1;
}

void DumbbellNet::run(double duration_s) {
  BBRM_REQUIRE_MSG(!flows_.empty(), "need at least one flow");
  BBRM_REQUIRE_MSG(duration_s > 0.0, "duration must be positive");
  if (!started_) {
    started_ = true;
    last_sent_.assign(flows_.size(), 0);
    for (auto& f : flows_) f->start();
    // Schedule sampling ticks up front (cheap, deterministic).
    for (double t = sample_interval_s_; t <= duration_s + 1e-12;
         t += sample_interval_s_) {
      events_.schedule_at(t, [this] { sample_row(); });
    }
  }
  duration_s_ += duration_s;
  events_.run_until(duration_s_);
  link_->flush_accounting();
}

void DumbbellNet::sample_row() {
  PacketSampleRow row;
  row.t = events_.now();
  row.flow_rate_pps.resize(flows_.size());
  row.flow_srtt_s.resize(flows_.size());
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    const auto s = flows_[i]->stats();
    row.flow_rate_pps[i] =
        static_cast<double>(s.data_sent - last_sent_[i]) / sample_interval_s_;
    last_sent_[i] = s.data_sent;
    row.flow_srtt_s[i] = s.srtt_s;
  }
  row.queue_pkts = link_->queue_pkts();
  const auto& ls = link_->stats();
  const std::int64_t arrived = ls.arrived - last_arrived_;
  const std::int64_t dropped = ls.dropped - last_dropped_;
  row.loss_fraction =
      arrived > 0 ? static_cast<double>(dropped) / static_cast<double>(arrived)
                  : 0.0;
  last_arrived_ = ls.arrived;
  last_dropped_ = ls.dropped;
  trace_.rows.push_back(std::move(row));
}

const Flow& DumbbellNet::flow(std::size_t i) const {
  BBRM_REQUIRE(i < flows_.size());
  return *flows_[i];
}

metrics::AggregateMetrics DumbbellNet::aggregate_metrics() const {
  BBRM_REQUIRE_MSG(duration_s_ > 0.0, "experiment has not run");
  metrics::AggregateMetrics out;

  out.mean_rate_pps.resize(flows_.size());
  RunningStats jitter;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    const auto s = flows_[i]->stats();
    out.mean_rate_pps[i] =
        static_cast<double>(s.data_sent) / duration_s_;
    jitter.add(s.jitter_ms);
  }
  out.jain = jain_index(out.mean_rate_pps);
  out.jitter_ms = jitter.mean();

  const auto& ls = link_->stats();
  out.loss_pct = ls.arrived > 0 ? 100.0 * static_cast<double>(ls.dropped) /
                                      static_cast<double>(ls.arrived)
                                : 0.0;
  out.occupancy_pct =
      100.0 * (ls.queue_time_pkts_s / duration_s_) / buffer_pkts_;
  out.utilization_pct = 100.0 * static_cast<double>(ls.served) /
                        (link_->capacity_pps() * duration_s_);
  return out;
}

}  // namespace bbrmodel::packetsim
