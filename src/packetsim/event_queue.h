// Discrete-event simulation core.
//
// A time-ordered queue of closures with FIFO tie-breaking for equal
// timestamps (deterministic replay — the whole packet simulator is seeded
// and reproducible, see DESIGN.md §4).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/require.h"

namespace bbrmodel::packetsim {

/// Event-driven simulation clock and scheduler.
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Current simulation time (seconds).
  double now() const { return now_; }

  /// Schedule `action` at absolute time `t` (must not be in the past).
  void schedule_at(double t, Action action);

  /// Schedule `action` after `delay` seconds.
  void schedule_in(double delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  /// Run events until the queue is empty or the clock passes `t_end`.
  /// Events scheduled exactly at t_end are executed.
  void run_until(double t_end);

  /// Number of events executed so far.
  std::uint64_t executed() const { return executed_; }

  bool empty() const { return queue_.empty(); }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;  // insertion order for stable ties
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace bbrmodel::packetsim
