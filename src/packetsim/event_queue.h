// Discrete-event simulation core.
//
// A time-ordered queue of closures with FIFO tie-breaking for equal
// timestamps (deterministic replay — the whole packet simulator is seeded
// and reproducible, see DESIGN.md §4).
//
// Events are arena-allocated: each scheduled closure lives in a pooled
// fixed-size node (inline storage, no std::function), nodes come from
// chunked slabs threaded onto a free list, and executing an event returns
// its node to the list. After the pool warms up, scheduling and running
// events performs zero malloc/free — the event loop is the packet
// simulator's hottest path, and per-event allocation dominated its profile.
// Closures larger than the inline storage (none today) are boxed on the
// heap transparently; move-only captures are fine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/require.h"

namespace bbrmodel::packetsim {

/// Event-driven simulation clock and scheduler.
class EventQueue {
 public:
  EventQueue() = default;
  ~EventQueue();

  /// Current simulation time (seconds).
  double now() const { return now_; }

  /// Schedule `action` at absolute time `t` (must not be in the past).
  template <typename F>
  void schedule_at(double t, F&& action) {
    BBRM_REQUIRE_MSG(t >= now_ - 1e-12, "cannot schedule into the past");
    Node* node = make_node(std::forward<F>(action));
    queue_.push(Entry{std::max(t, now_), next_seq_++, node});
  }

  /// Schedule `action` after `delay` seconds.
  template <typename F>
  void schedule_in(double delay, F&& action) {
    schedule_at(now_ + delay, std::forward<F>(action));
  }

  /// Run events until the queue is empty or the clock passes `t_end`.
  /// Events scheduled exactly at t_end are executed.
  void run_until(double t_end);

  /// Number of events executed so far.
  std::uint64_t executed() const { return executed_; }

  bool empty() const { return queue_.empty(); }

 private:
  /// Inline closure capacity. Sized for the simulator's largest capture
  /// (this + a Packet echo and change); bigger closures fall back to a
  /// heap box, so this is a performance knob, not a correctness limit.
  static constexpr std::size_t kInlineEventBytes = 96;
  static constexpr std::size_t kChunkNodes = 128;

  struct Node {
    void (*invoke)(void*) = nullptr;
    void (*destroy)(void*) = nullptr;  ///< null for trivial captures
    Node* next_free = nullptr;
    alignas(alignof(std::max_align_t)) unsigned char storage[kInlineEventBytes];
  };

  struct Entry {
    double time;
    std::uint64_t seq;  // insertion order for stable ties
    Node* node;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  Node* acquire();
  void release(Node* node);

  template <typename F>
  Node* make_node(F&& action) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineEventBytes) {
      Node* node = acquire();
      ::new (static_cast<void*>(node->storage)) Fn(std::forward<F>(action));
      node->invoke = [](void* p) { (*static_cast<Fn*>(p))(); };
      if constexpr (std::is_trivially_destructible_v<Fn>) {
        node->destroy = nullptr;
      } else {
        node->destroy = [](void* p) { static_cast<Fn*>(p)->~Fn(); };
      }
      return node;
    } else {
      // Oversized capture: box it; the boxing closure itself is tiny.
      return make_node(
          [boxed = std::unique_ptr<Fn>(new Fn(std::forward<F>(action)))] {
            (*boxed)();
          });
    }
  }

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::vector<std::unique_ptr<Node[]>> chunks_;
  Node* free_ = nullptr;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace bbrmodel::packetsim
