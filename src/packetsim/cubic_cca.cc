#include "packetsim/cubic_cca.h"

#include <algorithm>
#include <cmath>

#include "common/require.h"

namespace bbrmodel::packetsim {

CubicCca::CubicCca(double initial_window_pkts) : cwnd_(initial_window_pkts) {
  BBRM_REQUIRE_MSG(initial_window_pkts >= 1.0,
                   "initial window must be at least one segment");
}

double CubicCca::cubic_k() const {
  return std::cbrt(w_max_ * (1.0 - kBeta) / kC);
}

void CubicCca::on_ack(const AckEvent& ack) {
  if (ack.rtt_s > 0.0) last_rtt_ = ack.rtt_s;
  if (ack.ecn_ce) {
    // RFC 3168: CE echo triggers the loss response (once per round trip).
    LossEvent ce;
    ce.now = ack.now;
    on_loss(ce);
  }
  if (ack.newly_acked <= 0) return;
  const double acked = static_cast<double>(ack.newly_acked);

  if (cwnd_ < ssthresh_) {
    cwnd_ += acked;  // slow start
    return;
  }

  if (epoch_start_ < 0.0) {
    epoch_start_ = ack.now;
    if (w_max_ < cwnd_) w_max_ = cwnd_;  // no prior loss reference
    w_est_ = cwnd_;
  }
  const double rtt = std::max(last_rtt_, 1e-4);
  const double t = ack.now - epoch_start_;

  // Target one RTT ahead (RFC 8312 §4.1).
  const double d = t + rtt - cubic_k();
  const double target = kC * d * d * d + w_max_;

  // TCP-friendly region (RFC 8312 §4.2): emulated Reno growth.
  w_est_ += acked * (3.0 * (1.0 - kBeta) / (1.0 + kBeta)) / cwnd_;

  double next = cwnd_;
  if (target > cwnd_) {
    next = cwnd_ + (target - cwnd_) / cwnd_ * acked;
  } else {
    next = cwnd_ + 0.01 * acked / cwnd_;  // minimal growth near the plateau
  }
  cwnd_ = std::max(next, w_est_);
}

void CubicCca::on_loss(const LossEvent& loss) {
  if (loss.now < recovery_until_) return;
  // Fast convergence (RFC 8312 §4.6).
  if (cwnd_ < w_max_) {
    w_max_ = cwnd_ * (1.0 + kBeta) / 2.0;
  } else {
    w_max_ = cwnd_;
  }
  cwnd_ = std::max(cwnd_ * kBeta, 2.0);
  ssthresh_ = cwnd_;
  epoch_start_ = -1.0;
  w_est_ = cwnd_;
  recovery_until_ = loss.now + std::max(last_rtt_, 1e-3);
}

void CubicCca::on_rto(double now) {
  w_max_ = cwnd_;
  ssthresh_ = std::max(cwnd_ * kBeta, 2.0);
  cwnd_ = 1.0;
  epoch_start_ = -1.0;
  w_est_ = cwnd_;
  recovery_until_ = now + std::max(last_rtt_, 1e-3);
}

}  // namespace bbrmodel::packetsim
