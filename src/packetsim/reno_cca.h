// Packet-level TCP Reno (NewReno-style congestion response).
//
// Slow start (cwnd += 1 per ACKed packet) until ssthresh, congestion
// avoidance (cwnd += 1/cwnd per ACKed packet), multiplicative decrease to
// half on a loss event (at most once per round trip), window collapse to one
// segment on RTO. Unpaced — sending is ACK-clocked.
#pragma once

#include "packetsim/cca_api.h"

namespace bbrmodel::packetsim {

class RenoCca : public PacketCca {
 public:
  explicit RenoCca(double initial_window_pkts = 10.0);

  void on_ack(const AckEvent& ack) override;
  void on_loss(const LossEvent& loss) override;
  void on_rto(double now) override;

  double cwnd_pkts() const override { return cwnd_; }
  std::string name() const override { return "Reno"; }

  double ssthresh_pkts() const { return ssthresh_; }
  bool in_slow_start() const { return cwnd_ < ssthresh_; }

 private:
  double cwnd_;
  double ssthresh_ = 1e9;
  double last_rtt_ = 0.0;
  double recovery_until_ = -1.0;  ///< ignore further losses until this time
};

}  // namespace bbrmodel::packetsim
