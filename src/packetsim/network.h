// The packet-level dumbbell experiment (the paper's mininet substitute).
//
// N senders with heterogeneous access delays share one bottleneck
// (capacity, one-way propagation delay, AQM buffer). Produces the same
// aggregate metrics as the fluid side (metrics::AggregateMetrics) and a
// sampled trace for the "Experiment" columns of the trace figures.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "metrics/aggregate.h"
#include "packetsim/event_queue.h"
#include "packetsim/flow.h"
#include "packetsim/link.h"

namespace bbrmodel::packetsim {

/// Which AQM guards the bottleneck buffer.
enum class AqmKind {
  kDropTail,
  kRed,       ///< classic thresholded RED (experiment counterpart of Eq. 6)
  kFloydRed,  ///< classic min/max-threshold RED (extension)
  kRedEcn,    ///< RED with CE marking instead of drops (extension, RFC 3168)
};

/// One trace row of the packet experiment.
struct PacketSampleRow {
  double t = 0.0;
  std::vector<double> flow_rate_pps;   ///< sends per flow over the interval
  std::vector<double> flow_srtt_s;     ///< smoothed RTT per flow
  double queue_pkts = 0.0;             ///< instantaneous bottleneck backlog
  double loss_fraction = 0.0;          ///< drops/arrivals over the interval
};

/// Recorded packet-experiment trace.
struct PacketTrace {
  double sample_interval_s = 0.0;
  std::vector<PacketSampleRow> rows;
};

/// RED threshold configuration (packets). Defaults derive from the buffer;
/// the paper-style experiments pass BDP-derived values so that the RED
/// operating point does not scale with the buffer (as a fixed tc-red
/// deployment behaves).
struct RedThresholds {
  double min_pkts = -1.0;  ///< negative: 10 % of the buffer
  double max_pkts = -1.0;  ///< negative: 50 % of the buffer
};

/// The assembled dumbbell experiment.
class DumbbellNet {
 public:
  /// @param buffer_pkts bottleneck buffer (B); AQM built accordingly.
  DumbbellNet(double capacity_pps, double bottleneck_delay_s,
              double buffer_pkts, AqmKind aqm, std::uint64_t seed = 42,
              double sample_interval_s = 0.01, RedThresholds red = {});

  /// Add one flow; returns its index. Call before run().
  std::size_t add_flow(double access_delay_s,
                       std::unique_ptr<PacketCca> cca,
                       double start_time_s = 0.0);

  /// Run the experiment for `duration_s` seconds.
  void run(double duration_s);

  std::size_t num_flows() const { return flows_.size(); }
  const Flow& flow(std::size_t i) const;
  const BottleneckLink& bottleneck() const { return *link_; }
  const PacketTrace& trace() const { return trace_; }
  double duration_s() const { return duration_s_; }
  EventQueue& events() { return events_; }

  /// The same five aggregate metrics as the fluid model reports.
  metrics::AggregateMetrics aggregate_metrics() const;

 private:
  void sample_row();

  EventQueue events_;
  Rng rng_;
  double buffer_pkts_;
  double sample_interval_s_;
  std::unique_ptr<BottleneckLink> link_;
  std::vector<std::unique_ptr<Flow>> flows_;
  PacketTrace trace_;
  double duration_s_ = 0.0;
  bool started_ = false;

  // Interval accounting for the trace.
  std::vector<std::int64_t> last_sent_;
  std::int64_t last_arrived_ = 0;
  std::int64_t last_dropped_ = 0;
};

/// Build the AQM object for a buffer.
std::unique_ptr<Aqm> make_aqm(AqmKind kind, double buffer_pkts,
                              RedThresholds red = {});

std::string to_string(AqmKind kind);

}  // namespace bbrmodel::packetsim
