// The shared bottleneck: AQM buffer + serializing server + propagation.
#pragma once

#include <deque>
#include <functional>
#include <memory>

#include "common/rng.h"
#include "packetsim/aqm.h"
#include "packetsim/event_queue.h"
#include "packetsim/packet.h"

namespace bbrmodel::packetsim {

/// Cumulative bottleneck statistics.
struct LinkStats {
  std::int64_t arrived = 0;   ///< packets offered
  std::int64_t dropped = 0;   ///< packets dropped by the AQM
  std::int64_t marked = 0;    ///< packets CE-marked instead of dropped (ECN)
  std::int64_t served = 0;    ///< packets fully serialized
  double busy_time_s = 0.0;   ///< time the server was transmitting
  double queue_time_pkts_s = 0.0;  ///< ∫ q dt (time-average queue)
  double max_queue_pkts = 0.0;
};

/// A single FIFO bottleneck link: packets are admitted by the AQM, queued,
/// serialized at `capacity_pps`, and handed to `deliver` after the
/// propagation delay.
class BottleneckLink {
 public:
  using Deliver = std::function<void(const Packet&)>;

  /// @param deliver invoked at the instant a packet arrives at the far end.
  /// @param buffer_pkts physical buffer bound used for the ECN mark-vs-drop
  ///        decision; non-positive means "derive nothing" (marks whenever
  ///        the AQM is ECN-capable).
  BottleneckLink(EventQueue& events, double capacity_pps, double prop_delay_s,
                 std::unique_ptr<Aqm> aqm, Rng& rng, Deliver deliver,
                 double buffer_pkts = 0.0);

  /// Offer a packet to the queue (called at its arrival time).
  void offer(const Packet& packet);

  /// Instantaneous backlog (packets waiting, excluding the one in service).
  double queue_pkts() const { return static_cast<double>(queue_.size()); }

  const LinkStats& stats() const { return stats_; }
  double capacity_pps() const { return capacity_pps_; }
  double prop_delay_s() const { return prop_delay_s_; }
  const Aqm& aqm() const { return *aqm_; }

  /// Bring the queue-time integral up to date (call before reading stats).
  void flush_accounting();

 private:
  void start_service();
  void account();

  EventQueue& events_;
  double capacity_pps_;
  double prop_delay_s_;
  std::unique_ptr<Aqm> aqm_;
  Rng& rng_;
  Deliver deliver_;

  std::deque<Packet> queue_;
  bool busy_ = false;
  LinkStats stats_;
  double last_account_time_ = 0.0;
  double capacity_room_pkts_ = 0.0;
};

}  // namespace bbrmodel::packetsim
