#include "packetsim/reno_cca.h"

#include <algorithm>

#include "common/require.h"

namespace bbrmodel::packetsim {

RenoCca::RenoCca(double initial_window_pkts) : cwnd_(initial_window_pkts) {
  BBRM_REQUIRE_MSG(initial_window_pkts >= 1.0,
                   "initial window must be at least one segment");
}

void RenoCca::on_ack(const AckEvent& ack) {
  if (ack.rtt_s > 0.0) last_rtt_ = ack.rtt_s;
  if (ack.ecn_ce) {
    // RFC 3168: a CE echo elicits the same response as a loss event.
    LossEvent ce;
    ce.now = ack.now;
    on_loss(ce);
  }
  if (ack.newly_acked <= 0) return;
  const double acked = static_cast<double>(ack.newly_acked);
  if (cwnd_ < ssthresh_) {
    cwnd_ += acked;  // slow start
  } else {
    cwnd_ += acked / cwnd_;  // congestion avoidance
  }
}

void RenoCca::on_loss(const LossEvent& loss) {
  if (loss.now < recovery_until_) return;  // one reduction per round trip
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = ssthresh_;
  recovery_until_ = loss.now + std::max(last_rtt_, 1e-3);
}

void RenoCca::on_rto(double now) {
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = 1.0;
  recovery_until_ = now + std::max(last_rtt_, 1e-3);
}

}  // namespace bbrmodel::packetsim
