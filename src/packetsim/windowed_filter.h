// Windowed max/min filters (as used by BBR's BtlBw and RTprop estimators).
//
// Kathleen Nichols' streaming filter: keeps up to three best samples whose
// timestamps partition the window, giving O(1) updates and exact windowed
// extrema as long as samples arrive reasonably often.
#pragma once

#include <array>

namespace bbrmodel::packetsim {

/// Windowed extremum filter over a time axis (doubles).
/// Compare = std::greater<double> yields a max filter, std::less a min one.
template <typename Compare>
class WindowedFilter {
 public:
  /// @param window length of the window in time units.
  explicit WindowedFilter(double window) : window_(window) { reset(0.0, 0.0); }

  void reset(double time, double value) {
    for (auto& e : estimates_) e = {time, value};
  }

  /// Insert a sample; expired best samples rotate out (the exact Linux
  /// lib/minmax.c scheme, including the ¼- and ½-window freshening of the
  /// second and third choices).
  void update(double time, double value) {
    const Compare better;
    if (better(value, estimates_[0].value) || value == estimates_[0].value ||
        time - estimates_[2].time > window_) {
      reset(time, value);
      return;
    }
    if (better(value, estimates_[1].value) || value == estimates_[1].value) {
      estimates_[1] = {time, value};
      estimates_[2] = estimates_[1];
    } else if (better(value, estimates_[2].value) ||
               value == estimates_[2].value) {
      estimates_[2] = {time, value};
    }

    const double dt = time - estimates_[0].time;
    if (dt > window_) {
      // Best expired: promote and refit a fresh third choice.
      estimates_[0] = estimates_[1];
      estimates_[1] = estimates_[2];
      estimates_[2] = {time, value};
      if (time - estimates_[0].time > window_) {
        estimates_[0] = estimates_[1];
        estimates_[1] = estimates_[2];
      }
    } else if (estimates_[1].time == estimates_[0].time &&
               dt > window_ / 4.0) {
      // Second-choice candidate is stale (a clone of the best): refresh.
      estimates_[2] = estimates_[1] = Sample{time, value};
    } else if (estimates_[2].time == estimates_[1].time &&
               dt > window_ / 2.0) {
      estimates_[2] = {time, value};
    }
  }

  double best() const { return estimates_[0].value; }
  double best_time() const { return estimates_[0].time; }
  double window() const { return window_; }
  void set_window(double w) { window_ = w; }

 private:
  struct Sample {
    double time = 0.0;
    double value = 0.0;
  };
  double window_;
  std::array<Sample, 3> estimates_;
};

struct MaxCompare {
  bool operator()(double a, double b) const { return a > b; }
};
struct MinCompare {
  bool operator()(double a, double b) const { return a < b; }
};

using WindowedMax = WindowedFilter<MaxCompare>;
using WindowedMin = WindowedFilter<MinCompare>;

}  // namespace bbrmodel::packetsim
