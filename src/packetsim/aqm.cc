#include "packetsim/aqm.h"

#include "common/require.h"

namespace bbrmodel::packetsim {

DropTailAqm::DropTailAqm(double buffer_pkts) : buffer_pkts_(buffer_pkts) {
  BBRM_REQUIRE_MSG(buffer_pkts >= 1.0, "buffer must hold at least one packet");
}

bool DropTailAqm::should_drop(double /*now*/, double queue_pkts, Rng& /*rng*/) {
  return queue_pkts + 1.0 > buffer_pkts_ + 1e-9;
}

RedAqm::RedAqm(double buffer_pkts, double ewma_weight)
    : buffer_pkts_(buffer_pkts), weight_(ewma_weight) {
  BBRM_REQUIRE_MSG(buffer_pkts >= 1.0, "buffer must hold at least one packet");
  BBRM_REQUIRE_MSG(ewma_weight > 0.0 && ewma_weight <= 1.0,
                   "EWMA weight must be in (0, 1]");
}

bool RedAqm::should_drop(double /*now*/, double queue_pkts, Rng& rng) {
  avg_ = (1.0 - weight_) * avg_ + weight_ * queue_pkts;
  // Hard limit: a physically full buffer always drops.
  if (queue_pkts + 1.0 > buffer_pkts_ + 1e-9) return true;
  const double p = std::clamp(avg_ / buffer_pkts_, 0.0, 1.0);
  return rng.chance(p);
}

FloydRedAqm::FloydRedAqm(double buffer_pkts, double min_th_pkts,
                         double max_th_pkts, double max_p, double ewma_weight,
                         bool ecn)
    : buffer_pkts_(buffer_pkts),
      min_th_(min_th_pkts),
      max_th_(max_th_pkts),
      max_p_(max_p),
      weight_(ewma_weight),
      ecn_(ecn) {
  BBRM_REQUIRE_MSG(buffer_pkts >= 1.0, "buffer must hold at least one packet");
  BBRM_REQUIRE_MSG(min_th_pkts >= 0.0 && max_th_pkts > min_th_pkts,
                   "thresholds must satisfy 0 <= min_th < max_th");
  BBRM_REQUIRE_MSG(max_p > 0.0 && max_p <= 1.0, "max_p must be in (0, 1]");
}

bool FloydRedAqm::should_drop(double /*now*/, double queue_pkts, Rng& rng) {
  avg_ = (1.0 - weight_) * avg_ + weight_ * queue_pkts;
  if (queue_pkts + 1.0 > buffer_pkts_ + 1e-9) return true;
  if (avg_ < min_th_) return false;
  double p;
  if (avg_ <= max_th_) {
    p = max_p_ * (avg_ - min_th_) / (max_th_ - min_th_);
  } else {
    // Gentle mode: ramp from max_p at max_th to 1 at 2·max_th.
    p = max_p_ + (1.0 - max_p_) *
                     std::clamp((avg_ - max_th_) / max_th_, 0.0, 1.0);
  }
  return rng.chance(std::clamp(p, 0.0, 1.0));
}

}  // namespace bbrmodel::packetsim
