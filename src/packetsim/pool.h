// Fixed-size node pool for the packet simulator's per-packet containers.
//
// Flow tracks every in-flight packet in a std::map and two std::sets; the
// default allocator pays one malloc/free per tree node, i.e. per packet.
// NodePool hands out nodes from chunked slabs with a per-size free list, so
// after warm-up the send path allocates nothing. PoolAllocator adapts the
// pool to the std allocator interface for container use; node-based
// containers only ever allocate one node at a time, which is exactly the
// case the pool serves — bulk (n > 1) requests fall through to operator
// new, keeping the adapter correct for any container.
//
// The pool is intentionally not thread-safe: each Flow owns one and the
// simulator is single-threaded per cell (parallelism lives at the sweep
// layer, one simulation per task).
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

namespace bbrmodel::packetsim {

/// Chunked free-list allocator for fixed-size blocks. A pool serves a
/// handful of distinct sizes (one per container node type); lookup is a
/// short linear scan.
class NodePool {
 public:
  NodePool() = default;
  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;

  void* allocate(std::size_t bytes) {
    Bucket& bucket = bucket_of(bytes);
    if (bucket.free == nullptr) refill(bucket);
    FreeNode* node = bucket.free;
    bucket.free = node->next;
    return node;
  }

  void deallocate(void* p, std::size_t bytes) {
    Bucket& bucket = bucket_of(bytes);
    auto* node = static_cast<FreeNode*>(p);
    node->next = bucket.free;
    bucket.free = node;
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };
  struct Bucket {
    std::size_t block_bytes = 0;
    FreeNode* free = nullptr;
    std::vector<std::unique_ptr<unsigned char[]>> chunks;
  };

  static constexpr std::size_t kChunkBlocks = 64;

  static std::size_t rounded(std::size_t bytes) {
    // Keep every block aligned for any node type and big enough to hold
    // the free-list link.
    constexpr std::size_t kAlign = alignof(std::max_align_t);
    if (bytes < sizeof(FreeNode)) bytes = sizeof(FreeNode);
    return (bytes + kAlign - 1) / kAlign * kAlign;
  }

  Bucket& bucket_of(std::size_t bytes) {
    const std::size_t want = rounded(bytes);
    for (auto& bucket : buckets_) {
      if (bucket.block_bytes == want) return bucket;
    }
    buckets_.push_back(Bucket{want, nullptr, {}});
    return buckets_.back();
  }

  void refill(Bucket& bucket) {
    // operator new[] storage is aligned for std::max_align_t, and
    // block_bytes is a multiple of that alignment, so every block is
    // suitably aligned.
    bucket.chunks.push_back(
        std::make_unique<unsigned char[]>(bucket.block_bytes * kChunkBlocks));
    unsigned char* base = bucket.chunks.back().get();
    for (std::size_t i = 0; i < kChunkBlocks; ++i) {
      auto* node = reinterpret_cast<FreeNode*>(base + i * bucket.block_bytes);
      node->next = bucket.free;
      bucket.free = node;
    }
  }

  std::vector<Bucket> buckets_;
};

/// std allocator adapter over a NodePool. The pool must outlive every
/// container using it (declare the pool before the containers).
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  explicit PoolAllocator(NodePool* pool) : pool_(pool) {}
  template <typename U>
  PoolAllocator(const PoolAllocator<U>& other) : pool_(other.pool()) {}

  T* allocate(std::size_t n) {
    if (n == 1) return static_cast<T*>(pool_->allocate(sizeof(T)));
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) {
    if (n == 1) {
      pool_->deallocate(p, sizeof(T));
      return;
    }
    ::operator delete(p);
  }

  NodePool* pool() const { return pool_; }

  friend bool operator==(const PoolAllocator& a, const PoolAllocator& b) {
    return a.pool_ == b.pool_;
  }
  friend bool operator!=(const PoolAllocator& a, const PoolAllocator& b) {
    return !(a == b);
  }

 private:
  NodePool* pool_;
};

}  // namespace bbrmodel::packetsim
