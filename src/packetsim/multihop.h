// Multi-bottleneck packet experiments (the paper's §8 future-work scenario).
//
// Generalizes DumbbellNet to an arbitrary set of bottleneck links and
// per-flow paths across them: data traverses the links of its path in
// order (each an AQM buffer + serializing server + propagation), ACKs
// return over an uncongested fixed-delay path, exactly as in the dumbbell.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "metrics/aggregate.h"
#include "packetsim/event_queue.h"
#include "packetsim/flow.h"
#include "packetsim/link.h"
#include "packetsim/network.h"

namespace bbrmodel::packetsim {

/// A network of chained bottleneck links with per-flow routing.
class MultiHopNet {
 public:
  explicit MultiHopNet(std::uint64_t seed = 42);

  /// Add a bottleneck link; returns its index.
  std::size_t add_link(double capacity_pps, double prop_delay_s,
                       double buffer_pkts, AqmKind aqm);

  /// Add a flow traversing `path` (ordered link indices) after a one-way
  /// access delay. Call before run().
  std::size_t add_flow(double access_delay_s, std::vector<std::size_t> path,
                       std::unique_ptr<PacketCca> cca,
                       double start_time_s = 0.0);

  void run(double duration_s);

  std::size_t num_flows() const { return flows_.size(); }
  const Flow& flow(std::size_t i) const;
  const BottleneckLink& link(std::size_t l) const;
  double duration_s() const { return duration_s_; }

  /// Mean sending rate per flow (packets/s) plus the Jain index over them.
  std::vector<double> mean_rates_pps() const;
  double jain() const;

 private:
  // Routing adapter: one per (flow, hop) wiring data onward.
  struct Route {
    std::vector<std::size_t> links;
  };

  void forward(const Packet& packet, std::size_t arrived_link);

  EventQueue events_;
  Rng rng_;
  std::vector<std::unique_ptr<BottleneckLink>> links_;
  std::vector<std::unique_ptr<Flow>> flows_;
  std::vector<Route> routes_;
  std::vector<double> access_delay_;
  double duration_s_ = 0.0;
  bool started_ = false;
};

}  // namespace bbrmodel::packetsim
