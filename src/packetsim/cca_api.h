// Congestion-control interface of the packet-level simulator.
//
// Mirrors the hooks a kernel CCA sees: ACK processing with RTT and
// delivery-rate samples (Linux-style rate sampling), loss marks from the
// SACK scoreboard, and retransmission timeouts. The transport reads back a
// congestion window and an optional pacing rate.
#pragma once

#include <cstdint>
#include <string>

namespace bbrmodel::packetsim {

/// Per-ACK information handed to the CCA.
struct AckEvent {
  double now = 0.0;                ///< simulation time
  double rtt_s = 0.0;              ///< RTT sample (0 when unavailable)
  double delivery_rate_pps = 0.0;  ///< delivery-rate sample (0 if invalid)
  int newly_acked = 0;             ///< packets cumulatively/selectively acked
  double delivered_total = 0.0;    ///< flow's delivered counter (packets)
  double acked_delivered_at_send = 0.0;  ///< delivered counter when the
                                         ///< acked packet left (round detect)
  double inflight_pkts = 0.0;      ///< outstanding data after this ACK
  bool ecn_ce = false;             ///< the acked packet carried a CE mark
};

/// A packet declared lost by the scoreboard.
struct LossEvent {
  double now = 0.0;
  std::int64_t seq = -1;
  double inflight_pkts = 0.0;
  double delivered_total = 0.0;
};

/// Congestion-control algorithm, packet level.
class PacketCca {
 public:
  virtual ~PacketCca() = default;

  /// Called once when the flow starts.
  virtual void on_start(double now) { (void)now; }

  virtual void on_ack(const AckEvent& ack) = 0;
  virtual void on_loss(const LossEvent& loss) = 0;

  /// Retransmission timeout (all inflight data is presumed lost).
  virtual void on_rto(double now) { (void)now; }

  /// Current congestion window in packets (≥ 1).
  virtual double cwnd_pkts() const = 0;

  /// Pacing rate in packets/s; 0 disables pacing (ACK-clocked bursts).
  virtual double pacing_pps() const { return 0.0; }

  virtual std::string name() const = 0;
};

}  // namespace bbrmodel::packetsim
