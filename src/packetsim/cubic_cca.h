// Packet-level TCP CUBIC (RFC 8312).
//
// Window growth follows W_cubic(t) = C·(t − K)³ + W_max with
// K = ∛(W_max·(1 − β)/C), C = 0.4, β = 0.7, including the TCP-friendly
// region (W_est) and fast convergence. Unpaced, like the kernel default.
#pragma once

#include "packetsim/cca_api.h"

namespace bbrmodel::packetsim {

class CubicCca : public PacketCca {
 public:
  explicit CubicCca(double initial_window_pkts = 10.0);

  void on_ack(const AckEvent& ack) override;
  void on_loss(const LossEvent& loss) override;
  void on_rto(double now) override;

  double cwnd_pkts() const override { return cwnd_; }
  std::string name() const override { return "CUBIC"; }

  double w_max_pkts() const { return w_max_; }
  bool in_slow_start() const { return cwnd_ < ssthresh_; }

  static constexpr double kC = 0.4;
  static constexpr double kBeta = 0.7;

 private:
  double cubic_k() const;

  double cwnd_;
  double ssthresh_ = 1e9;
  double w_max_ = 0.0;
  double epoch_start_ = -1.0;  ///< start of the current cubic epoch
  double last_rtt_ = 0.0;
  double recovery_until_ = -1.0;
  // TCP-friendly (Reno-tracking) estimate.
  double w_est_ = 0.0;
};

}  // namespace bbrmodel::packetsim
