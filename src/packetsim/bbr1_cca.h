// Packet-level BBRv1 (Cardwell et al. 2016; paper §3.1).
//
// Full state machine:
//   STARTUP  — pacing/cwnd gain 2/ln2 ≈ 2.885 until the bandwidth estimate
//              plateaus for three rounds,
//   DRAIN    — inverse gain until the estimated queue is drained,
//   PROBE_BW — eight-phase gain cycle [5/4, 3/4, 1, 1, 1, 1, 1, 1], one
//              phase per RTprop, randomized starting phase,
//   PROBE_RTT— cwnd of four segments for 200 ms whenever the RTprop
//              estimate goes 10 s without a new minimum.
//
// BtlBw is a windowed maximum of delivery-rate samples over ten packet-timed
// rounds; RTprop a windowed minimum with a 10 s validity. cwnd = 2·BDP in
// PROBE_BW (the paper's Eq. 23). Loss is ignored (BBRv1's defining trait).
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "packetsim/cca_api.h"
#include "packetsim/windowed_filter.h"

namespace bbrmodel::packetsim {

class Bbr1Cca : public PacketCca {
 public:
  explicit Bbr1Cca(std::uint64_t seed = 1, double initial_window_pkts = 10.0);

  void on_start(double now) override;
  void on_ack(const AckEvent& ack) override;
  void on_loss(const LossEvent& loss) override;
  void on_rto(double now) override;

  double cwnd_pkts() const override;
  double pacing_pps() const override;
  std::string name() const override { return "BBRv1"; }

  // Introspection.
  enum class Mode { kStartup, kDrain, kProbeBw, kProbeRtt };
  Mode mode() const { return mode_; }
  double btlbw_pps() const { return bw_filter_.best(); }
  double rtprop_s() const { return min_rtt_; }
  int cycle_index() const { return cycle_index_; }

  static constexpr double kHighGain = 2.885;  // 2/ln 2
  static constexpr double kCwndGain = 2.0;
  static constexpr int kCycleLength = 8;
  static constexpr int kBwFilterRounds = 10;
  static constexpr double kProbeRttDuration = 0.2;
  static constexpr double kMinRttExpiry = 10.0;
  static constexpr double kProbeRttCwnd = 4.0;

 private:
  double bdp_pkts() const;
  double pacing_gain() const;
  void advance_cycle(const AckEvent& ack);
  void check_full_pipe();
  void maybe_enter_probe_rtt(const AckEvent& ack);
  void handle_probe_rtt(const AckEvent& ack);

  Rng rng_;
  double initial_window_;

  Mode mode_ = Mode::kStartup;
  WindowedMax bw_filter_;
  double min_rtt_ = 0.0;
  double min_rtt_stamp_ = 0.0;

  // Round tracking (packet-timed rounds via delivered-counter snapshots).
  double next_round_delivered_ = 0.0;
  std::int64_t round_count_ = 0;
  bool round_start_ = false;

  // Full-pipe detection.
  double full_bw_ = 0.0;
  int full_bw_count_ = 0;
  bool filled_pipe_ = false;

  // PROBE_BW cycling.
  int cycle_index_ = 0;
  double cycle_stamp_ = 0.0;

  // PROBE_RTT.
  double probe_rtt_done_stamp_ = -1.0;
};

}  // namespace bbrmodel::packetsim
