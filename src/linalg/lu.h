// LU decomposition with partial pivoting; linear solves and determinants.
//
// Used by the analysis module for Newton refinement of equilibria and by the
// eigen solver tests.
#pragma once

#include <vector>

#include "linalg/matrix.h"

namespace bbrmodel::linalg {

/// LU factorization (Doolittle, partial pivoting) of a square matrix.
class LuDecomposition {
 public:
  /// Factorizes a copy of `a`. Singular (to machine precision) matrices are
  /// flagged rather than throwing, so callers can test solvability.
  explicit LuDecomposition(const Matrix& a);

  /// True if a pivot collapsed to (near) zero.
  bool singular() const { return singular_; }

  /// Solve A x = b. Throws PreconditionError if singular.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Determinant (0 if flagged singular).
  double determinant() const;

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
  int perm_sign_ = 1;
  bool singular_ = false;
};

/// Convenience one-shot solve of A x = b.
std::vector<double> solve(const Matrix& a, const std::vector<double>& b);

}  // namespace bbrmodel::linalg
