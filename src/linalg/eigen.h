// Eigenvalues of small dense real matrices.
//
// The indirect Lyapunov method (paper §5, Appendix D) requires the spectrum
// of Jacobians evaluated at equilibria. We reduce to upper Hessenberg form
// with Householder reflections and then run a Wilkinson-shifted QR iteration
// in complex arithmetic, which handles complex-conjugate pairs without the
// bookkeeping of the real Francis double-shift. Matrices here are tiny
// (N+1 states), so clarity wins over peak FLOPs.
#pragma once

#include <complex>
#include <vector>

#include "linalg/matrix.h"

namespace bbrmodel::linalg {

using Complex = std::complex<double>;

/// Result of an eigenvalue computation.
struct EigenResult {
  /// Eigenvalues sorted by descending real part (ties: descending imag).
  std::vector<Complex> values;
  /// True if the QR iteration converged for every eigenvalue.
  bool converged = true;
  /// Number of QR iterations used (diagnostic).
  int iterations = 0;
};

/// Reduce a square real matrix to upper Hessenberg form (similarity
/// transform; eigenvalues preserved). Exposed for testing.
Matrix hessenberg(const Matrix& a);

/// Compute all eigenvalues of a square real matrix.
EigenResult eigenvalues(const Matrix& a);

/// Closed-form eigenvalues of a 2x2 matrix (used for validation and for the
/// paper's Theorem 2 system, Eq. (48)).
std::vector<Complex> eigenvalues_2x2(double a, double b, double c, double d);

/// Largest real part over the spectrum ("spectral abscissa"); the system is
/// locally asymptotically stable iff this is negative (Lyapunov indirect
/// method).
double spectral_abscissa(const std::vector<Complex>& eigs);

}  // namespace bbrmodel::linalg
