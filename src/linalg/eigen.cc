#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>

#include "common/require.h"

namespace bbrmodel::linalg {
namespace {

constexpr double kEps = 1e-14;

/// Dense complex matrix stored row-major (internal helper).
class CMatrix {
 public:
  explicit CMatrix(std::size_t n) : n_(n), data_(n * n) {}
  Complex& operator()(std::size_t r, std::size_t c) { return data_[r * n_ + c]; }
  Complex operator()(std::size_t r, std::size_t c) const {
    return data_[r * n_ + c];
  }
  std::size_t n() const { return n_; }

 private:
  std::size_t n_;
  std::vector<Complex> data_;
};

/// Complex Givens rotation G = [[c, s], [-conj(s), c]] with c real such that
/// G * [a; b] = [r; 0].
struct Givens {
  double c = 1.0;
  Complex s{0.0, 0.0};
  Complex r{0.0, 0.0};
};

Givens make_givens(Complex a, Complex b) {
  Givens g;
  const double abs_a = std::abs(a);
  const double abs_b = std::abs(b);
  if (abs_b == 0.0) {
    g.c = 1.0;
    g.s = 0.0;
    g.r = a;
    return g;
  }
  if (abs_a == 0.0) {
    g.c = 0.0;
    g.s = std::conj(b) / abs_b;
    g.r = abs_b;
    return g;
  }
  const double t = std::hypot(abs_a, abs_b);
  const Complex phase = a / abs_a;
  g.c = abs_a / t;
  g.s = phase * std::conj(b) / t;
  g.r = phase * t;
  return g;
}

/// Wilkinson shift: the eigenvalue of the trailing 2x2 block closest to the
/// bottom-right entry.
Complex wilkinson_shift(const CMatrix& h, std::size_t m) {
  const Complex a = h(m - 1, m - 1);
  const Complex b = h(m - 1, m);
  const Complex c = h(m, m - 1);
  const Complex d = h(m, m);
  const Complex tr2 = (a + d) * 0.5;
  const Complex det = a * d - b * c;
  const Complex disc = std::sqrt(tr2 * tr2 - det);
  const Complex l1 = tr2 + disc;
  const Complex l2 = tr2 - disc;
  return std::abs(l1 - d) < std::abs(l2 - d) ? l1 : l2;
}

}  // namespace

Matrix hessenberg(const Matrix& a) {
  BBRM_REQUIRE_MSG(a.square(), "Hessenberg reduction requires a square matrix");
  const std::size_t n = a.rows();
  Matrix h = a;
  if (n < 3) return h;

  for (std::size_t k = 0; k + 2 < n; ++k) {
    // Householder vector annihilating column k below the subdiagonal.
    double alpha = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) alpha += h(i, k) * h(i, k);
    alpha = std::sqrt(alpha);
    if (alpha < 1e-300) continue;
    if (h(k + 1, k) > 0.0) alpha = -alpha;

    std::vector<double> v(n, 0.0);
    v[k + 1] = h(k + 1, k) - alpha;
    for (std::size_t i = k + 2; i < n; ++i) v[i] = h(i, k);
    double vnorm2 = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) vnorm2 += v[i] * v[i];
    if (vnorm2 < 1e-300) continue;

    // H <- (I - 2 v v^T / v^T v) H
    for (std::size_t c = 0; c < n; ++c) {
      double dot = 0.0;
      for (std::size_t i = k + 1; i < n; ++i) dot += v[i] * h(i, c);
      const double f = 2.0 * dot / vnorm2;
      for (std::size_t i = k + 1; i < n; ++i) h(i, c) -= f * v[i];
    }
    // H <- H (I - 2 v v^T / v^T v)
    for (std::size_t r = 0; r < n; ++r) {
      double dot = 0.0;
      for (std::size_t i = k + 1; i < n; ++i) dot += h(r, i) * v[i];
      const double f = 2.0 * dot / vnorm2;
      for (std::size_t i = k + 1; i < n; ++i) h(r, i) -= f * v[i];
    }
    // Zero out the now-negligible entries explicitly.
    for (std::size_t i = k + 2; i < n; ++i) h(i, k) = 0.0;
  }
  return h;
}

EigenResult eigenvalues(const Matrix& a) {
  BBRM_REQUIRE_MSG(a.square(), "eigenvalues require a square matrix");
  const std::size_t n = a.rows();
  EigenResult result;
  if (n == 1) {
    result.values = {Complex(a(0, 0), 0.0)};
    return result;
  }
  if (n == 2) {
    result.values = eigenvalues_2x2(a(0, 0), a(0, 1), a(1, 0), a(1, 1));
    return result;
  }

  const Matrix hr = hessenberg(a);
  CMatrix h(n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) h(r, c) = Complex(hr(r, c), 0.0);

  const double scale = std::max(1e-300, hr.max_abs());
  std::size_t hi = n - 1;
  int iter_since_deflation = 0;
  const int max_total_iters = 200 * static_cast<int>(n);

  while (hi > 0) {
    if (result.iterations > max_total_iters) {
      result.converged = false;
      break;
    }
    // Deflate tiny subdiagonal entries.
    bool deflated = false;
    for (std::size_t k = hi; k > 0; --k) {
      const double sub = std::abs(h(k, k - 1));
      const double local =
          std::abs(h(k - 1, k - 1)) + std::abs(h(k, k));
      if (sub <= kEps * std::max(local, scale)) {
        h(k, k - 1) = 0.0;
        if (k == hi) {
          --hi;
          iter_since_deflation = 0;
          deflated = true;
        }
        break;
      }
    }
    if (deflated) continue;
    if (hi == 0) break;

    // Find the start of the active unreduced block [lo, hi].
    std::size_t lo = hi;
    while (lo > 0 && std::abs(h(lo, lo - 1)) != 0.0) --lo;

    // Shift: Wilkinson, with an occasional exceptional shift against
    // stagnation on symmetric-cycle cases.
    Complex mu = wilkinson_shift(h, hi);
    ++iter_since_deflation;
    ++result.iterations;
    if (iter_since_deflation % 12 == 0) {
      mu = h(hi, hi) + Complex(0.75 * std::abs(h(hi, hi - 1)), 0.0);
    }

    // One implicit QR sweep on the active window via explicit Givens chain.
    for (std::size_t i = lo; i <= hi; ++i) h(i, i) -= mu;
    std::vector<Givens> rotations(hi);  // indexed by k, valid for [lo, hi)
    for (std::size_t k = lo; k < hi; ++k) {
      Givens g = make_givens(h(k, k), h(k + 1, k));
      rotations[k] = g;
      // Apply G to rows k, k+1 on columns k..hi.
      for (std::size_t c = k; c <= hi; ++c) {
        const Complex x = h(k, c);
        const Complex y = h(k + 1, c);
        h(k, c) = g.c * x + g.s * y;
        h(k + 1, c) = -std::conj(g.s) * x + g.c * y;
      }
    }
    // H <- R Q: apply conjugate rotations on the right.
    for (std::size_t k = lo; k < hi; ++k) {
      const Givens& g = rotations[k];
      const std::size_t row_end = std::min(hi, k + 1);
      for (std::size_t r = lo; r <= row_end; ++r) {
        const Complex x = h(r, k);
        const Complex y = h(r, k + 1);
        h(r, k) = g.c * x + std::conj(g.s) * y;
        h(r, k + 1) = -g.s * x + g.c * y;
      }
    }
    for (std::size_t i = lo; i <= hi; ++i) h(i, i) += mu;
  }

  result.values.reserve(n);
  for (std::size_t i = 0; i < n; ++i) result.values.push_back(h(i, i));
  // Real input: force conjugate symmetry on negligible imaginary parts.
  for (auto& v : result.values) {
    if (std::abs(v.imag()) < 1e-9 * std::max(1.0, std::abs(v.real()))) {
      v = Complex(v.real(), 0.0);
    }
  }
  std::sort(result.values.begin(), result.values.end(),
            [](const Complex& x, const Complex& y) {
              if (x.real() != y.real()) return x.real() > y.real();
              return x.imag() > y.imag();
            });
  return result;
}

std::vector<Complex> eigenvalues_2x2(double a, double b, double c, double d) {
  const Complex tr2((a + d) * 0.5, 0.0);
  const Complex det(a * d - b * c, 0.0);
  const Complex disc = std::sqrt(tr2 * tr2 - det);
  std::vector<Complex> out = {tr2 + disc, tr2 - disc};
  std::sort(out.begin(), out.end(), [](const Complex& x, const Complex& y) {
    if (x.real() != y.real()) return x.real() > y.real();
    return x.imag() > y.imag();
  });
  return out;
}

double spectral_abscissa(const std::vector<Complex>& eigs) {
  BBRM_REQUIRE_MSG(!eigs.empty(), "empty spectrum");
  double m = eigs.front().real();
  for (const auto& e : eigs) m = std::max(m, e.real());
  return m;
}

}  // namespace bbrmodel::linalg
