#include "linalg/lu.h"

#include <cmath>

#include "common/require.h"

namespace bbrmodel::linalg {

LuDecomposition::LuDecomposition(const Matrix& a) : lu_(a) {
  BBRM_REQUIRE_MSG(a.square(), "LU requires a square matrix");
  const std::size_t n = a.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: find the largest |entry| in column k at/below row k.
    std::size_t pivot = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(lu_(r, k));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-300) {
      singular_ = true;
      return;
    }
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(pivot, c));
      std::swap(perm_[k], perm_[pivot]);
      perm_sign_ = -perm_sign_;
    }
    for (std::size_t r = k + 1; r < n; ++r) {
      lu_(r, k) /= lu_(k, k);
      const double f = lu_(r, k);
      if (f == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= f * lu_(k, c);
    }
  }
}

std::vector<double> LuDecomposition::solve(const std::vector<double>& b) const {
  BBRM_REQUIRE_MSG(!singular_, "cannot solve with a singular matrix");
  const std::size_t n = lu_.rows();
  BBRM_REQUIRE(b.size() == n);
  std::vector<double> x(n);
  // Forward substitution on the permuted right-hand side (L has unit diagonal).
  for (std::size_t r = 0; r < n; ++r) {
    double s = b[perm_[r]];
    for (std::size_t c = 0; c < r; ++c) s -= lu_(r, c) * x[c];
    x[r] = s;
  }
  // Backward substitution.
  for (std::size_t ri = n; ri-- > 0;) {
    double s = x[ri];
    for (std::size_t c = ri + 1; c < n; ++c) s -= lu_(ri, c) * x[c];
    x[ri] = s / lu_(ri, ri);
  }
  return x;
}

double LuDecomposition::determinant() const {
  if (singular_) return 0.0;
  double det = perm_sign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

std::vector<double> solve(const Matrix& a, const std::vector<double>& b) {
  return LuDecomposition(a).solve(b);
}

}  // namespace bbrmodel::linalg
