#include "linalg/matrix.h"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/require.h"

namespace bbrmodel::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {
  BBRM_REQUIRE_MSG(rows > 0 && cols > 0, "matrix dimensions must be positive");
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  BBRM_REQUIRE_MSG(rows.size() > 0, "matrix needs at least one row");
  rows_ = rows.size();
  cols_ = rows.begin()->size();
  BBRM_REQUIRE_MSG(cols_ > 0, "matrix needs at least one column");
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    BBRM_REQUIRE_MSG(row.size() == cols_, "ragged initializer");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  BBRM_REQUIRE(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  BBRM_REQUIRE(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator+(const Matrix& other) const {
  BBRM_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = data_[i] + other.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  BBRM_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = data_[i] - other.data_[i];
  return out;
}

Matrix Matrix::operator*(const Matrix& other) const {
  BBRM_REQUIRE_MSG(cols_ == other.rows_, "dimension mismatch in product");
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::operator*(double scalar) const {
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * scalar;
  return out;
}

std::vector<double> Matrix::apply(const std::vector<double>& v) const {
  BBRM_REQUIRE(v.size() == cols_);
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out[r] += (*this)(r, c) * v[c];
  return out;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::abs(x));
  return m;
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < cols_; ++c) {
      os << std::setw(precision + 7) << (*this)(r, c);
    }
    os << (r + 1 == rows_ ? " ]" : "\n");
  }
  return os.str();
}

double norm2(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

double norm_inf(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

}  // namespace bbrmodel::linalg
