// Small dense real matrices for the stability-analysis module.
//
// The Jacobians analyzed in the paper have N+1 or 2 states (N senders plus a
// bottleneck queue), so this module favours clarity and exactness over BLAS
// performance. Row-major storage, bounds-checked access.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace bbrmodel::linalg {

/// Dense real matrix, row-major.
class Matrix {
 public:
  Matrix() = default;

  /// rows×cols zero matrix.
  Matrix(std::size_t rows, std::size_t cols);

  /// Construct from nested initializer lists; all rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// n×n identity.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool square() const { return rows_ == cols_; }

  /// Bounds-checked element access.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  /// Unchecked element access for inner loops.
  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  Matrix transpose() const;

  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator*(const Matrix& other) const;
  Matrix operator*(double scalar) const;

  /// Matrix–vector product (vector length must equal cols()).
  std::vector<double> apply(const std::vector<double>& v) const;

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Max absolute element.
  double max_abs() const;

  /// Human-readable rendering (for diagnostics).
  std::string to_string(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean norm of a vector.
double norm2(const std::vector<double>& v);

/// Infinity norm of a vector.
double norm_inf(const std::vector<double>& v);

}  // namespace bbrmodel::linalg
