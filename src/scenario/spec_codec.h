// Canonical byte serialization of experiment specs.
//
// The sweep engine's content-addressed cell cache memoizes finished
// (ExperimentSpec, seed) cells across figure benches and re-runs; its keys
// hash the bytes produced here. The encoding is therefore canonical: a
// fixed key=value line format covering every field that influences a
// simulation, with doubles rendered losslessly (common/hash exact_number),
// so that equal specs always serialize to equal bytes and any semantic
// difference — down to the last solver constant — changes them.
//
// The format also parses back (parse_canonical_spec), which keeps it
// honest: a field added to ExperimentSpec or FluidConfig without a codec
// update fails the round-trip test rather than silently aliasing distinct
// cells.
#pragma once

#include <string>

#include "scenario/scenario.h"

namespace bbrmodel::scenario {

/// Serialize every simulation-relevant field of `spec` (including the seed
/// and the full FluidConfig) into the canonical key=value byte form.
///
/// Precondition: spec_cacheable(spec) — custom bbr_init callbacks have no
/// byte representation.
std::string canonical_spec_string(const ExperimentSpec& spec);

/// Inverse of canonical_spec_string. Throws PreconditionError on unknown
/// keys, malformed lines, or missing fields.
ExperimentSpec parse_canonical_spec(const std::string& bytes);

/// The fixed-width hex "spec key" of a spec: FNV-1a 64 over its canonical
/// bytes. This is the content-address fragment shared by cache cell file
/// names, execution-plan listings, and merge diagnostics, so a cell can be
/// correlated across all three by eye.
std::string canonical_spec_hash(const ExperimentSpec& spec);

/// True if the spec can be addressed by content: false when a custom
/// bbr_init callback is set (a std::function cannot be serialized, so such
/// specs must never be cached).
bool spec_cacheable(const ExperimentSpec& spec);

}  // namespace bbrmodel::scenario
