#include "scenario/scenario.h"

#include <algorithm>

#include "cca/cubic.h"
#include "cca/reno.h"
#include "common/require.h"
#include "core/batch_engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "packetsim/bbr1_cca.h"
#include "packetsim/bbr2_cca.h"
#include "packetsim/cubic_cca.h"
#include "packetsim/reno_cca.h"

namespace bbrmodel::scenario {

std::string to_string(CcaKind kind) {
  switch (kind) {
    case CcaKind::kReno:
      return "RENO";
    case CcaKind::kCubic:
      return "CUBIC";
    case CcaKind::kBbrv1:
      return "BBRv1";
    case CcaKind::kBbrv2:
      return "BBRv2";
  }
  return "unknown";
}

CcaMix homogeneous(CcaKind kind, std::size_t n) {
  BBRM_REQUIRE(n > 0);
  return CcaMix{to_string(kind), std::vector<CcaKind>(n, kind)};
}

CcaMix half_half(CcaKind a, CcaKind b, std::size_t n) {
  BBRM_REQUIRE(n >= 2);
  CcaMix mix;
  mix.label = to_string(a) + "/" + to_string(b);
  mix.flows.assign(n, b);
  for (std::size_t i = 0; i < n / 2; ++i) mix.flows[i] = a;
  return mix;
}

std::vector<CcaMix> paper_mixes(std::size_t n) {
  return {
      homogeneous(CcaKind::kBbrv1, n),
      half_half(CcaKind::kBbrv1, CcaKind::kBbrv2, n),
      half_half(CcaKind::kBbrv1, CcaKind::kCubic, n),
      half_half(CcaKind::kBbrv1, CcaKind::kReno, n),
      homogeneous(CcaKind::kBbrv2, n),
      half_half(CcaKind::kBbrv2, CcaKind::kCubic, n),
      half_half(CcaKind::kBbrv2, CcaKind::kReno, n),
  };
}

std::unique_ptr<core::FluidCca> make_fluid_cca(CcaKind kind,
                                               core::BbrInit init) {
  switch (kind) {
    case CcaKind::kReno:
      return std::make_unique<cca::RenoFluid>();
    case CcaKind::kCubic:
      return std::make_unique<cca::CubicFluid>();
    case CcaKind::kBbrv1:
      return std::make_unique<core::Bbrv1Fluid>(init);
    case CcaKind::kBbrv2:
      return std::make_unique<core::Bbrv2Fluid>(init);
  }
  return nullptr;
}

std::unique_ptr<packetsim::PacketCca> make_packet_cca(CcaKind kind,
                                                      std::uint64_t seed) {
  switch (kind) {
    case CcaKind::kReno:
      return std::make_unique<packetsim::RenoCca>();
    case CcaKind::kCubic:
      return std::make_unique<packetsim::CubicCca>();
    case CcaKind::kBbrv1:
      return std::make_unique<packetsim::Bbr1Cca>(seed);
    case CcaKind::kBbrv2:
      return std::make_unique<packetsim::Bbr2Cca>(seed);
  }
  return nullptr;
}

namespace {

net::DumbbellSpec dumbbell_spec(const ExperimentSpec& spec) {
  BBRM_REQUIRE_MSG(!spec.mix.flows.empty(), "a mix with flows is required");
  net::DumbbellSpec ds;
  ds.num_senders = spec.mix.flows.size();
  ds.bottleneck_capacity_pps = spec.capacity_pps;
  ds.bottleneck_delay_s = spec.bottleneck_delay_s;
  if (spec.flow_rtts_s.empty()) {
    ds.access_delays_s = net::spread_access_delays(
        ds.num_senders, spec.min_rtt_s, spec.max_rtt_s,
        spec.bottleneck_delay_s);
  } else {
    BBRM_REQUIRE_MSG(spec.flow_rtts_s.size() == ds.num_senders,
                     "flow_rtts_s must have one RTT per flow");
    ds.access_delays_s.reserve(ds.num_senders);
    for (const double rtt : spec.flow_rtts_s) {
      BBRM_REQUIRE_MSG(rtt / 2.0 >= spec.bottleneck_delay_s,
                       "per-flow RTT too small for the bottleneck delay");
      ds.access_delays_s.push_back(rtt / 2.0 - spec.bottleneck_delay_s);
    }
  }
  ds.buffer_bdp = spec.buffer_bdp;
  ds.discipline = spec.discipline;
  return ds;
}

double mean_rtt_s(const ExperimentSpec& spec) {
  if (spec.flow_rtts_s.empty()) {
    return (spec.min_rtt_s + spec.max_rtt_s) / 2.0;
  }
  double sum = 0.0;
  for (const double rtt : spec.flow_rtts_s) sum += rtt;
  return sum / static_cast<double>(spec.flow_rtts_s.size());
}

}  // namespace

FluidSetup build_fluid(const ExperimentSpec& spec) {
  const auto ds = dumbbell_spec(spec);
  auto dumbbell = net::make_dumbbell(ds);

  std::vector<std::unique_ptr<core::FluidCca>> agents;
  agents.reserve(spec.mix.flows.size());
  for (std::size_t i = 0; i < spec.mix.flows.size(); ++i) {
    core::BbrInit init;
    if (spec.bbr_init) init = spec.bbr_init(i);
    agents.push_back(make_fluid_cca(spec.mix.flows[i], init));
  }

  FluidSetup setup;
  setup.bottleneck_link = dumbbell.bottleneck_link;
  setup.bottleneck_bdp_pkts = dumbbell.bottleneck_bdp_pkts;
  setup.sim = std::make_unique<core::FluidSimulation>(
      std::move(dumbbell.topology), std::move(agents), spec.fluid);
  return setup;
}

PacketSetup build_packet(const ExperimentSpec& spec) {
  const auto ds = dumbbell_spec(spec);
  const double mean_rtt = mean_rtt_s(spec);
  PacketSetup setup;
  setup.bottleneck_bdp_pkts = spec.capacity_pps * mean_rtt;

  packetsim::AqmKind aqm = spec.discipline == net::Discipline::kRed
                               ? packetsim::AqmKind::kRed
                               : packetsim::AqmKind::kDropTail;
  // RED operating point anchored at the BDP (not the buffer), like a fixed
  // tc-red deployment across the paper's buffer sweep.
  packetsim::RedThresholds red;
  red.min_pkts = 0.10 * setup.bottleneck_bdp_pkts;
  red.max_pkts = 0.50 * setup.bottleneck_bdp_pkts;
  setup.net = std::make_unique<packetsim::DumbbellNet>(
      spec.capacity_pps, spec.bottleneck_delay_s,
      std::max(1.0, spec.buffer_bdp * setup.bottleneck_bdp_pkts), aqm,
      spec.seed, 0.01, red);
  for (std::size_t i = 0; i < spec.mix.flows.size(); ++i) {
    setup.net->add_flow(ds.access_delays_s[i],
                        make_packet_cca(spec.mix.flows[i],
                                        spec.seed + 1000 + i));
  }
  return setup;
}

namespace {

obs::Counter& fluid_step_counter() {
  static obs::Counter& c = obs::Registry::global().counter("engine.fluid_steps");
  return c;
}

obs::Counter& rhs_eval_counter() {
  static obs::Counter& c = obs::Registry::global().counter("engine.rhs_evals");
  return c;
}

}  // namespace

metrics::AggregateMetrics run_fluid(const ExperimentSpec& spec) {
  auto setup = build_fluid(spec);
  {
    obs::Span span("fluid-run", "engine");
    setup.sim->run(spec.duration_s);
    span.arg("steps", static_cast<std::uint64_t>(setup.sim->steps()));
    span.arg("rhs_evals", static_cast<std::uint64_t>(setup.sim->rhs_evals()));
  }
  fluid_step_counter().add(setup.sim->steps());
  rhs_eval_counter().add(setup.sim->rhs_evals());
  return metrics::evaluate_fluid(*setup.sim, setup.bottleneck_link);
}

std::vector<metrics::AggregateMetrics> run_fluid_batch(
    const std::vector<const ExperimentSpec*>& specs) {
  std::vector<metrics::AggregateMetrics> out;
  if (specs.empty()) return out;
  for (const ExperimentSpec* spec : specs) {
    BBRM_REQUIRE_MSG(spec != nullptr, "null spec in fluid batch");
    BBRM_REQUIRE_MSG(spec->duration_s == specs.front()->duration_s &&
                         spec->fluid.step_s == specs.front()->fluid.step_s,
                     "a fluid batch must share duration and step size");
  }

  core::BatchFluidEngine engine;
  std::vector<std::size_t> bottleneck_links;
  bottleneck_links.reserve(specs.size());
  for (const ExperimentSpec* spec : specs) {
    const auto ds = dumbbell_spec(*spec);
    auto dumbbell = net::make_dumbbell(ds);
    std::vector<std::unique_ptr<core::FluidCca>> agents;
    agents.reserve(spec->mix.flows.size());
    for (std::size_t i = 0; i < spec->mix.flows.size(); ++i) {
      core::BbrInit init;
      if (spec->bbr_init) init = spec->bbr_init(i);
      agents.push_back(make_fluid_cca(spec->mix.flows[i], init));
    }
    bottleneck_links.push_back(dumbbell.bottleneck_link);
    engine.add_cell(std::move(dumbbell.topology), std::move(agents),
                    spec->fluid);
  }

  {
    obs::Span span("fluid-batch-run", "engine");
    span.arg("cells", static_cast<std::uint64_t>(specs.size()));
    engine.run(specs.front()->duration_s);
    span.arg("steps", static_cast<std::uint64_t>(engine.total_steps()));
    span.arg("rhs_evals", static_cast<std::uint64_t>(engine.total_rhs_evals()));
  }
  fluid_step_counter().add(engine.total_steps());
  rhs_eval_counter().add(engine.total_rhs_evals());

  out.reserve(specs.size());
  for (std::size_t cell = 0; cell < specs.size(); ++cell) {
    const std::size_t n_agents = engine.num_agents(cell);
    const std::size_t n_links = engine.num_links(cell);
    std::vector<double> sent(n_agents);
    for (std::size_t i = 0; i < n_agents; ++i) {
      sent[i] = engine.sent_pkts(cell, i);
    }
    std::vector<core::LinkAccounting> acct(n_links);
    for (std::size_t l = 0; l < n_links; ++l) {
      acct[l] = engine.link_accounting(cell, l);
    }
    const std::size_t n_samples = engine.num_samples(cell);
    std::vector<double> rtt(n_samples * n_agents);
    for (std::size_t s = 0; s < n_samples; ++s) {
      for (std::size_t i = 0; i < n_agents; ++i) {
        rtt[s * n_agents + i] = engine.rtt_sample(cell, s, i);
      }
    }

    metrics::FluidCellView view;
    view.duration_s = engine.now(cell);
    view.num_agents = n_agents;
    view.num_links = n_links;
    view.sent_pkts = sent.data();
    view.link_acct = acct.data();
    view.bottleneck_link = bottleneck_links[cell];
    view.bottleneck_capacity_pps =
        engine.link(cell, bottleneck_links[cell]).capacity_pps;
    view.bottleneck_buffer_pkts =
        engine.link(cell, bottleneck_links[cell]).buffer_pkts;
    view.sample_interval_s = engine.sample_interval_s(cell);
    view.num_samples = n_samples;
    view.rtt_samples = rtt.data();
    out.push_back(metrics::evaluate_fluid_cell(view));
  }
  return out;
}

metrics::AggregateMetrics run_packet(const ExperimentSpec& spec) {
  auto setup = build_packet(spec);
  {
    obs::Span span("packet-run", "engine");
    span.arg("duration_s", spec.duration_s);
    setup.net->run(spec.duration_s);
  }
  obs::Registry::global().counter("engine.packet_runs").add();
  return setup.net->aggregate_metrics();
}

}  // namespace bbrmodel::scenario
