// Experiment scenarios: the bridge between the fluid model and the packet
// simulator.
//
// Encodes the paper's validation set-up (§4.1): a dumbbell with N senders,
// 100 Mbps bottleneck, configurable buffer (in BDP) and discipline, CCA
// mixes from the figure legends, heterogeneous RTTs in a given range.
// `build_fluid` / `build_packet` produce ready-to-run simulations of the
// same scenario, so every bench and example can print "Model" and
// "Experiment" columns side by side, exactly like the paper's figures.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/bbrv1.h"
#include "core/bbrv2.h"
#include "core/engine.h"
#include "metrics/aggregate.h"
#include "net/topology.h"
#include "packetsim/network.h"

namespace bbrmodel::scenario {

/// The four congestion-control algorithms of the paper.
enum class CcaKind { kReno, kCubic, kBbrv1, kBbrv2 };

std::string to_string(CcaKind kind);

/// A per-flow CCA assignment with a display label ("BBRv1/RENO", ...).
struct CcaMix {
  std::string label;
  std::vector<CcaKind> flows;
};

/// All N flows run `kind`.
CcaMix homogeneous(CcaKind kind, std::size_t n);

/// First half runs `a`, second half `b` (the paper's N/2 + N/2 split).
CcaMix half_half(CcaKind a, CcaKind b, std::size_t n);

/// The seven mixes of the paper's aggregate figures (Figs. 6–10 legends):
/// BBRv1, BBRv1/BBRv2, BBRv1/CUBIC, BBRv1/RENO, BBRv2, BBRv2/CUBIC,
/// BBRv2/RENO.
std::vector<CcaMix> paper_mixes(std::size_t n);

/// One dumbbell experiment specification (defaults = §4.3 set-up).
struct ExperimentSpec {
  CcaMix mix;
  double capacity_pps = 8333.333333;  ///< 100 Mbps at 1500 B MSS
  double bottleneck_delay_s = 0.010;  ///< d_ℓ (one-way)
  double min_rtt_s = 0.030;           ///< total-RTT spread lower end
  double max_rtt_s = 0.040;           ///< total-RTT spread upper end
  /// Optional explicit per-flow total RTTs in seconds (asymmetric RTT
  /// workloads, e.g. Pareto/bimodal distributions expanded by the sweep
  /// grid). When non-empty it must hold one entry per flow, each at least
  /// 2·bottleneck_delay_s; min/max_rtt_s then only label the nominal
  /// spread. Empty = the legacy linear spread over [min, max].
  std::vector<double> flow_rtts_s;
  double buffer_bdp = 1.0;            ///< bottleneck buffer in BDP
  net::Discipline discipline = net::Discipline::kDropTail;
  double duration_s = 5.0;
  std::uint64_t seed = 42;            ///< packet-experiment randomness
  core::FluidConfig fluid;            ///< solver settings for the model side
  /// Optional per-flow initial conditions for fluid BBR agents (Insight 5).
  std::function<core::BbrInit(std::size_t flow)> bbr_init;
};

/// Fluid ("Model") side of the experiment, ready to run.
struct FluidSetup {
  std::unique_ptr<core::FluidSimulation> sim;
  std::size_t bottleneck_link = 0;
  double bottleneck_bdp_pkts = 0.0;
};
FluidSetup build_fluid(const ExperimentSpec& spec);

/// Packet ("Experiment") side of the experiment, ready to run.
struct PacketSetup {
  std::unique_ptr<packetsim::DumbbellNet> net;
  double bottleneck_bdp_pkts = 0.0;
};
PacketSetup build_packet(const ExperimentSpec& spec);

/// Run the fluid side and return the paper's five aggregate metrics.
metrics::AggregateMetrics run_fluid(const ExperimentSpec& spec);

/// Run a batch of fluid experiments through the lockstep SoA engine
/// (core/batch_engine.h) and return one metrics entry per spec, in order.
/// Every spec must share duration_s and fluid.step_s (the batch integrates
/// one time grid). Results are bitwise identical to run_fluid on each spec
/// — that contract is what lets the sweep layer batch transparently.
std::vector<metrics::AggregateMetrics> run_fluid_batch(
    const std::vector<const ExperimentSpec*>& specs);

/// Run the packet side and return the same metrics.
metrics::AggregateMetrics run_packet(const ExperimentSpec& spec);

/// Factory: fluid CCA of a given kind.
std::unique_ptr<core::FluidCca> make_fluid_cca(CcaKind kind,
                                               core::BbrInit init = {});

/// Factory: packet-level CCA of a given kind.
std::unique_ptr<packetsim::PacketCca> make_packet_cca(CcaKind kind,
                                                      std::uint64_t seed);

}  // namespace bbrmodel::scenario
