#include "scenario/spec_codec.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "common/hash.h"
#include "common/require.h"

namespace bbrmodel::scenario {

namespace {

std::string encode_bool(bool v) { return v ? "1" : "0"; }

bool decode_bool(const std::string& text) {
  BBRM_REQUIRE_MSG(text == "0" || text == "1",
                   "spec codec: bool fields are 0 or 1, got '" + text + "'");
  return text == "1";
}

double decode_double(const std::string& text) {
  if (text == "nan") return std::nan("");
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  BBRM_REQUIRE_MSG(end != text.c_str() && *end == '\0',
                   "spec codec: bad number '" + text + "'");
  return v;
}

std::uint64_t decode_u64(const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  BBRM_REQUIRE_MSG(end != text.c_str() && *end == '\0' && errno != ERANGE,
                   "spec codec: bad integer '" + text + "'");
  return v;
}

int decode_int(const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  BBRM_REQUIRE_MSG(end != text.c_str() && *end == '\0' && errno != ERANGE,
                   "spec codec: bad integer '" + text + "'");
  return static_cast<int>(v);
}

CcaKind decode_cca(const std::string& name) {
  if (name == to_string(CcaKind::kReno)) return CcaKind::kReno;
  if (name == to_string(CcaKind::kCubic)) return CcaKind::kCubic;
  if (name == to_string(CcaKind::kBbrv1)) return CcaKind::kBbrv1;
  if (name == to_string(CcaKind::kBbrv2)) return CcaKind::kBbrv2;
  BBRM_REQUIRE_MSG(false, "spec codec: unknown CCA '" + name + "'");
  return CcaKind::kReno;
}

std::string encode_flows(const std::vector<CcaKind>& flows) {
  std::string out;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (i != 0) out += ',';
    out += to_string(flows[i]);
  }
  return out;
}

std::vector<CcaKind> decode_flows(const std::string& text) {
  std::vector<CcaKind> flows;
  std::stringstream stream(text);
  std::string name;
  while (std::getline(stream, name, ',')) flows.push_back(decode_cca(name));
  return flows;
}

std::string encode_doubles(const std::vector<double>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ' ';
    out += exact_number(values[i]);
  }
  return out;
}

std::vector<double> decode_doubles(const std::string& text) {
  std::vector<double> values;
  std::stringstream stream(text);
  std::string token;
  while (stream >> token) values.push_back(decode_double(token));
  return values;
}

std::string encode_discipline(net::Discipline d) {
  return d == net::Discipline::kRed ? "red" : "droptail";
}

net::Discipline decode_discipline(const std::string& text) {
  if (text == "droptail") return net::Discipline::kDropTail;
  if (text == "red") return net::Discipline::kRed;
  BBRM_REQUIRE_MSG(false, "spec codec: unknown discipline '" + text + "'");
  return net::Discipline::kDropTail;
}

/// One serialized field: canonical key, getter, setter.
struct FieldCodec {
  const char* key;
  std::function<std::string(const ExperimentSpec&)> get;
  std::function<void(ExperimentSpec&, const std::string&)> set;
};

#define BBRM_DOUBLE_FIELD(name, expr)                                     \
  FieldCodec {                                                            \
    name, [](const ExperimentSpec& s) { return exact_number(s.expr); },   \
        [](ExperimentSpec& s, const std::string& v) {                     \
          s.expr = decode_double(v);                                      \
        }                                                                 \
  }
#define BBRM_BOOL_FIELD(name, expr)                                       \
  FieldCodec {                                                            \
    name, [](const ExperimentSpec& s) { return encode_bool(s.expr); },    \
        [](ExperimentSpec& s, const std::string& v) {                     \
          s.expr = decode_bool(v);                                        \
        }                                                                 \
  }

/// Every simulation-relevant field, in canonical emission order. A new
/// ExperimentSpec/FluidConfig field MUST be added here (the round-trip
/// test in tests/cache_test.cc exists to catch forgetting).
const std::vector<FieldCodec>& field_codecs() {
  static const std::vector<FieldCodec> kFields = {
      {"mix.label",
       [](const ExperimentSpec& s) { return s.mix.label; },
       [](ExperimentSpec& s, const std::string& v) { s.mix.label = v; }},
      {"mix.flows",
       [](const ExperimentSpec& s) { return encode_flows(s.mix.flows); },
       [](ExperimentSpec& s, const std::string& v) {
         s.mix.flows = decode_flows(v);
       }},
      BBRM_DOUBLE_FIELD("capacity_pps", capacity_pps),
      BBRM_DOUBLE_FIELD("bottleneck_delay_s", bottleneck_delay_s),
      BBRM_DOUBLE_FIELD("min_rtt_s", min_rtt_s),
      BBRM_DOUBLE_FIELD("max_rtt_s", max_rtt_s),
      {"flow_rtts_s",
       [](const ExperimentSpec& s) { return encode_doubles(s.flow_rtts_s); },
       [](ExperimentSpec& s, const std::string& v) {
         s.flow_rtts_s = decode_doubles(v);
       }},
      BBRM_DOUBLE_FIELD("buffer_bdp", buffer_bdp),
      {"discipline",
       [](const ExperimentSpec& s) { return encode_discipline(s.discipline); },
       [](ExperimentSpec& s, const std::string& v) {
         s.discipline = decode_discipline(v);
       }},
      BBRM_DOUBLE_FIELD("duration_s", duration_s),
      {"seed",
       [](const ExperimentSpec& s) { return std::to_string(s.seed); },
       [](ExperimentSpec& s, const std::string& v) { s.seed = decode_u64(v); }},
      BBRM_DOUBLE_FIELD("fluid.step_s", fluid.step_s),
      BBRM_DOUBLE_FIELD("fluid.record_interval_s", fluid.record_interval_s),
      BBRM_DOUBLE_FIELD("fluid.k_time", fluid.k_time),
      BBRM_DOUBLE_FIELD("fluid.k_rate", fluid.k_rate),
      BBRM_DOUBLE_FIELD("fluid.k_vol", fluid.k_vol),
      BBRM_DOUBLE_FIELD("fluid.k_prob", fluid.k_prob),
      BBRM_DOUBLE_FIELD("fluid.droptail_exponent", fluid.droptail_exponent),
      BBRM_DOUBLE_FIELD("fluid.loss_indicator_eps", fluid.loss_indicator_eps),
      BBRM_BOOL_FIELD("fluid.literal_eq18", fluid.literal_eq18),
      BBRM_BOOL_FIELD("fluid.loss_based_slow_start",
                      fluid.loss_based_slow_start),
      BBRM_BOOL_FIELD("fluid.per_rtt_loss_events", fluid.per_rtt_loss_events),
      BBRM_BOOL_FIELD("fluid.literal_eq19", fluid.literal_eq19),
      BBRM_DOUBLE_FIELD("fluid.probe_rtt_interval_s",
                        fluid.probe_rtt_interval_s),
      BBRM_DOUBLE_FIELD("fluid.probe_rtt_duration_s",
                        fluid.probe_rtt_duration_s),
      BBRM_DOUBLE_FIELD("fluid.bbr2_loss_thresh", fluid.bbr2_loss_thresh),
      BBRM_DOUBLE_FIELD("fluid.bbr2_beta", fluid.bbr2_beta),
      BBRM_DOUBLE_FIELD("fluid.bbr2_headroom", fluid.bbr2_headroom),
      BBRM_DOUBLE_FIELD("fluid.inflight_hi_growth_pps",
                        fluid.inflight_hi_growth_pps),
      BBRM_DOUBLE_FIELD("fluid.mss_bytes", fluid.mss_bytes),
      BBRM_DOUBLE_FIELD("fluid.max_rate_factor", fluid.max_rate_factor),
      BBRM_BOOL_FIELD("fluid.model_startup", fluid.model_startup),
      BBRM_DOUBLE_FIELD("fluid.startup_gain", fluid.startup_gain),
      BBRM_DOUBLE_FIELD("fluid.startup_initial_window_pkts",
                        fluid.startup_initial_window_pkts),
      {"fluid.startup_full_bw_rounds",
       [](const ExperimentSpec& s) {
         return std::to_string(s.fluid.startup_full_bw_rounds);
       },
       [](ExperimentSpec& s, const std::string& v) {
         s.fluid.startup_full_bw_rounds = decode_int(v);
       }},
  };
  return kFields;
}

#undef BBRM_DOUBLE_FIELD
#undef BBRM_BOOL_FIELD

constexpr const char* kVersionLine = "bbrm-spec=1";

}  // namespace

bool spec_cacheable(const ExperimentSpec& spec) {
  return !static_cast<bool>(spec.bbr_init);
}

std::string canonical_spec_string(const ExperimentSpec& spec) {
  BBRM_REQUIRE_MSG(spec_cacheable(spec),
                   "specs with a custom bbr_init have no canonical bytes");
  BBRM_REQUIRE_MSG(spec.mix.label.find('\n') == std::string::npos,
                   "mix labels must be single-line");
  std::string out = kVersionLine;
  out += '\n';
  for (const auto& field : field_codecs()) {
    out += field.key;
    out += '=';
    out += field.get(spec);
    out += '\n';
  }
  return out;
}

std::string canonical_spec_hash(const ExperimentSpec& spec) {
  return hex64(fnv1a64(canonical_spec_string(spec)));
}

ExperimentSpec parse_canonical_spec(const std::string& bytes) {
  std::map<std::string, const FieldCodec*> by_key;
  for (const auto& field : field_codecs()) by_key[field.key] = &field;

  ExperimentSpec spec;
  std::set<std::string> seen;
  std::stringstream stream(bytes);
  std::string line;
  bool version_seen = false;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    if (!version_seen) {
      BBRM_REQUIRE_MSG(line == kVersionLine,
                       "spec codec: expected '" + std::string(kVersionLine) +
                           "', got '" + line + "'");
      version_seen = true;
      continue;
    }
    const auto eq = line.find('=');
    BBRM_REQUIRE_MSG(eq != std::string::npos,
                     "spec codec: malformed line '" + line + "'");
    const std::string key = line.substr(0, eq);
    const auto it = by_key.find(key);
    BBRM_REQUIRE_MSG(it != by_key.end(),
                     "spec codec: unknown field '" + key + "'");
    BBRM_REQUIRE_MSG(seen.insert(key).second,
                     "spec codec: duplicate field '" + key + "'");
    it->second->set(spec, line.substr(eq + 1));
  }
  BBRM_REQUIRE_MSG(version_seen, "spec codec: missing version line");
  BBRM_REQUIRE_MSG(seen.size() == field_codecs().size(),
                   "spec codec: missing fields (got " +
                       std::to_string(seen.size()) + " of " +
                       std::to_string(field_codecs().size()) + ")");
  return spec;
}

}  // namespace bbrmodel::scenario
