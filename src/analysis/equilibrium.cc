#include "analysis/equilibrium.h"

#include <cmath>

#include "common/require.h"

namespace bbrmodel::analysis {
namespace {

void require_uniform_delay(const BottleneckScenario& s) {
  const double d = s.prop_delay_s.front();
  for (double di : s.prop_delay_s) {
    BBRM_REQUIRE_MSG(std::abs(di - d) < 1e-12,
                     "closed-form equilibria assume a uniform delay");
  }
}

}  // namespace

Bbrv1DeepEquilibrium bbrv1_deep_equilibrium(const BottleneckScenario& s) {
  require_uniform_delay(s);
  const double d = s.prop_delay_s.front();
  const auto n = static_cast<double>(s.num_senders());
  Bbrv1DeepEquilibrium eq;
  eq.queue_pkts = d * s.capacity_pps;  // Thm. 1: queuing delay = prop delay
  eq.btl_pps.assign(s.num_senders(), s.capacity_pps / n);
  eq.required_buffer_pkts = eq.queue_pkts;
  return eq;
}

Bbrv1ShallowEquilibrium bbrv1_shallow_equilibrium(
    const BottleneckScenario& s) {
  const auto n = static_cast<double>(s.num_senders());
  Bbrv1ShallowEquilibrium eq;
  eq.btl_pps = 5.0 * s.capacity_pps / (4.0 * n + 1.0);  // Thm. 3
  eq.aggregate_pps = n * eq.btl_pps;
  eq.loss_rate = n > 1.0 ? (eq.aggregate_pps - s.capacity_pps) /
                               eq.aggregate_pps
                         : 0.0;  // (N−1)/(5N)
  return eq;
}

Bbrv2Equilibrium bbrv2_equilibrium(const BottleneckScenario& s) {
  require_uniform_delay(s);
  const double d = s.prop_delay_s.front();
  const auto n = static_cast<double>(s.num_senders());
  Bbrv2Equilibrium eq;
  eq.queue_pkts = (n - 1.0) / (4.0 * n + 1.0) * d * s.capacity_pps;  // Thm. 4
  eq.rate_pps = s.capacity_pps / n;
  eq.btl_pps = 5.0 * s.capacity_pps / (4.0 * n + 1.0);
  eq.delta = (4.0 * n + 1.0) / (5.0 * n);
  return eq;
}

double bbrv2_buffer_reduction(std::size_t num_senders) {
  const auto n = static_cast<double>(num_senders);
  return 1.0 - (n - 1.0) / (4.0 * n + 1.0);
}

std::vector<double> bbrv1_deep_equilibrium_state(const BottleneckScenario& s) {
  const auto eq = bbrv1_deep_equilibrium(s);
  std::vector<double> state = eq.btl_pps;
  state.push_back(eq.queue_pkts);
  return state;
}

std::vector<double> bbrv1_shallow_equilibrium_state(
    const BottleneckScenario& s) {
  const auto eq = bbrv1_shallow_equilibrium(s);
  return std::vector<double>(s.num_senders(), eq.btl_pps);
}

std::vector<double> bbrv2_equilibrium_state(const BottleneckScenario& s) {
  const auto eq = bbrv2_equilibrium(s);
  std::vector<double> state(s.num_senders(), eq.rate_pps);
  state.push_back(eq.queue_pkts);
  return state;
}

}  // namespace bbrmodel::analysis
