// Stability verdicts and convergence probes (paper §5, Theorems 2 & 5).
//
// The indirect Lyapunov method: an equilibrium of ẋ = f(x) is locally
// asymptotically stable if every eigenvalue of ∂f/∂x at the equilibrium has
// a negative real part. `analyze` renders the verdict for a Jacobian;
// `probe_convergence` additionally integrates the nonlinear system from a
// perturbed start and reports whether it returns to the equilibrium —
// a numerical cross-check of the local result.
#pragma once

#include <vector>

#include "analysis/reduced_models.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"

namespace bbrmodel::analysis {

/// Lyapunov-indirect-method verdict for one Jacobian.
struct StabilityReport {
  std::vector<linalg::Complex> eigenvalues;  ///< sorted, descending real part
  double spectral_abscissa = 0.0;            ///< max real part
  bool asymptotically_stable = false;        ///< spectral abscissa < 0
};

/// Compute the spectrum of a Jacobian and render the verdict.
StabilityReport analyze(const linalg::Matrix& jacobian);

/// Result of integrating the nonlinear system from a perturbed start.
struct ConvergenceProbe {
  double initial_distance = 0.0;  ///< ‖x(0) − x*‖₂
  double final_distance = 0.0;    ///< ‖x(T) − x*‖₂
  bool converged = false;         ///< final distance < tolerance
  std::vector<double> final_state;
};

/// Integrate `rhs` from equilibrium·(1 + perturbation) for `t_end` seconds
/// (RK4, fixed step) and measure the remaining distance.
///
/// @param nonneg_indices state components clamped at ≥ 0 after each step
///        (queues and rates).
ConvergenceProbe probe_convergence(const ode::OdeRhs& rhs,
                                   const std::vector<double>& equilibrium,
                                   double perturbation_frac, double t_end,
                                   double step,
                                   double tolerance_frac = 0.01);

}  // namespace bbrmodel::analysis
