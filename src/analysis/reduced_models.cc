#include "analysis/reduced_models.h"

#include <algorithm>
#include <cmath>

#include "common/require.h"

namespace bbrmodel::analysis {
namespace {

/// Suppress outward drift at the queue boundaries: at q ≤ 0 no negative
/// drift, at q ≥ B (if bounded) no positive drift. Keeps the ODE system
/// well-posed without an explicit projection step.
double bounded_queue_drift(double drift, double q, double buffer) {
  if (q <= 0.0 && drift < 0.0) return 0.0;
  if (buffer >= 0.0 && q >= buffer && drift > 0.0) return 0.0;
  return drift;
}

}  // namespace

BottleneckScenario BottleneckScenario::uniform(std::size_t n,
                                               double capacity_pps,
                                               double prop_delay_s,
                                               double buffer_pkts) {
  BBRM_REQUIRE(n > 0);
  BBRM_REQUIRE(capacity_pps > 0.0);
  BBRM_REQUIRE(prop_delay_s > 0.0);
  BottleneckScenario s;
  s.capacity_pps = capacity_pps;
  s.prop_delay_s.assign(n, prop_delay_s);
  s.buffer_pkts = buffer_pkts;
  return s;
}

double window_factor_v1(double prop_delay_s, double queue_pkts,
                        double capacity_pps) {
  return 2.0 * prop_delay_s /
         (prop_delay_s + std::max(0.0, queue_pkts) / capacity_pps);
}

double window_factor_v2(double prop_delay_s, double queue_pkts,
                        double capacity_pps) {
  return prop_delay_s /
         (prop_delay_s + std::max(0.0, queue_pkts) / capacity_pps);
}

ode::OdeRhs bbrv1_reduced_rhs(const BottleneckScenario& scenario) {
  BBRM_REQUIRE_MSG(scenario.num_senders() > 0, "need at least one sender");
  const BottleneckScenario s = scenario;  // captured by value
  return [s](double /*t*/, const std::vector<double>& x,
             std::vector<double>& dxdt) {
    const std::size_t n = s.num_senders();
    BBRM_REQUIRE(x.size() == n + 1);
    const double c = s.capacity_pps;
    const double q = std::max(0.0, x[n]);

    // Background rates min(1, Δ_j)·x_j and their total (Eq. 33 denominator).
    double total_bg = 0.0;
    std::vector<double> bg(n);
    for (std::size_t j = 0; j < n; ++j) {
      const double delta = window_factor_v1(s.prop_delay_s[j], q, c);
      bg[j] = std::min(1.0, delta) * std::max(0.0, x[j]);
      total_bg += bg[j];
    }

    for (std::size_t i = 0; i < n; ++i) {
      const double delta = window_factor_v1(s.prop_delay_s[i], q, c);
      const double probe = std::min(1.25, delta) * std::max(0.0, x[i]);
      double x_max;
      if (q > 0.0) {
        const double denom = probe + (total_bg - bg[i]);
        x_max = denom > 0.0 ? probe * c / denom : probe;
      } else {
        x_max = probe;
      }
      dxdt[i] = x_max - x[i];  // Eq. (34)
    }
    dxdt[n] = bounded_queue_drift(total_bg - c, q, s.buffer_pkts);
  };
}

ode::OdeRhs bbrv1_shallow_rhs(const BottleneckScenario& scenario) {
  BBRM_REQUIRE_MSG(scenario.num_senders() > 0, "need at least one sender");
  const BottleneckScenario s = scenario;
  return [s](double /*t*/, const std::vector<double>& x,
             std::vector<double>& dxdt) {
    const std::size_t n = s.num_senders();
    BBRM_REQUIRE(x.size() == n);
    const double c = s.capacity_pps;
    double total = 0.0;
    for (std::size_t j = 0; j < n; ++j) total += std::max(0.0, x[j]);
    for (std::size_t i = 0; i < n; ++i) {
      const double xi = std::max(0.0, x[i]);
      const double denom = 1.25 * xi + (total - xi);
      const double x_max = denom > 0.0 ? 1.25 * xi * c / denom : 1.25 * xi;
      dxdt[i] = x_max - x[i];  // Eq. (50) regime
    }
  };
}

ode::OdeRhs bbrv1_aggregate_rhs(const BottleneckScenario& scenario) {
  BBRM_REQUIRE_MSG(scenario.num_senders() > 0, "need at least one sender");
  const double d = scenario.prop_delay_s.front();
  for (double di : scenario.prop_delay_s) {
    BBRM_REQUIRE_MSG(std::abs(di - d) < 1e-12,
                     "aggregate model requires a uniform propagation delay");
  }
  const double c = scenario.capacity_pps;
  const double buffer = scenario.buffer_pkts;
  return [c, d, buffer](double /*t*/, const std::vector<double>& x,
                        std::vector<double>& dxdt) {
    BBRM_REQUIRE(x.size() == 2);
    const double y = std::max(0.0, x[0]);
    const double q = std::max(0.0, x[1]);
    const double lat = d + q / c;  // d + q/C
    const double delta = 2.0 * d / lat;
    // Eq. (46).
    dxdt[0] = -y * y / (c * lat) + (1.0 / lat - 1.0) * y + delta * c;
    // Eq. (45).
    dxdt[1] = bounded_queue_drift(y - c, q, buffer);
  };
}

ode::OdeRhs bbrv2_reduced_rhs(const BottleneckScenario& scenario) {
  BBRM_REQUIRE_MSG(scenario.num_senders() > 0, "need at least one sender");
  const BottleneckScenario s = scenario;
  return [s](double /*t*/, const std::vector<double>& x,
             std::vector<double>& dxdt) {
    const std::size_t n = s.num_senders();
    BBRM_REQUIRE(x.size() == n + 1);
    const double c = s.capacity_pps;
    const double q = std::max(0.0, x[n]);

    double total = 0.0;
    for (std::size_t j = 0; j < n; ++j) total += std::max(0.0, x[j]);

    for (std::size_t i = 0; i < n; ++i) {
      const double xi = std::max(0.0, x[i]);
      const double lat = s.prop_delay_s[i] + q / c;
      const double delta = s.prop_delay_s[i] / lat;
      const double denom = 1.25 * xi + (total - xi);
      const double probe_gain =
          denom > 0.0 ? 1.25 * delta * c / denom : 1.25 * delta;
      // Eq. (59).
      dxdt[i] = ((c - total) / (c * lat) + probe_gain - 1.0) * xi;
    }
    // Eq. (60).
    dxdt[n] = bounded_queue_drift(total - c, q, s.buffer_pkts);
  };
}

std::vector<double> eval_rhs(const ode::OdeRhs& rhs,
                             const std::vector<double>& state) {
  std::vector<double> out(state.size(), 0.0);
  rhs(0.0, state, out);
  return out;
}

}  // namespace bbrmodel::analysis
