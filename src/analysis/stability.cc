#include "analysis/stability.h"

#include <algorithm>
#include <cmath>

#include "common/require.h"
#include "ode/steppers.h"

namespace bbrmodel::analysis {

StabilityReport analyze(const linalg::Matrix& jacobian) {
  StabilityReport report;
  const auto eig = linalg::eigenvalues(jacobian);
  report.eigenvalues = eig.values;
  report.spectral_abscissa = linalg::spectral_abscissa(eig.values);
  report.asymptotically_stable =
      eig.converged && report.spectral_abscissa < 0.0;
  return report;
}

ConvergenceProbe probe_convergence(const ode::OdeRhs& rhs,
                                   const std::vector<double>& equilibrium,
                                   double perturbation_frac, double t_end,
                                   double step, double tolerance_frac) {
  BBRM_REQUIRE_MSG(!equilibrium.empty(), "empty equilibrium");
  BBRM_REQUIRE(step > 0.0 && t_end > 0.0);

  ConvergenceProbe probe;
  std::vector<double> x = equilibrium;
  // Asymmetric perturbation: alternate up/down so the disturbance is not a
  // pure rescaling (which could hide directional instabilities).
  for (std::size_t k = 0; k < x.size(); ++k) {
    const double sign = (k % 2 == 0) ? 1.0 : -1.0;
    x[k] *= 1.0 + sign * perturbation_frac;
  }

  auto distance = [&](const std::vector<double>& v) {
    double acc = 0.0;
    for (std::size_t k = 0; k < v.size(); ++k) {
      const double dd = v[k] - equilibrium[k];
      acc += dd * dd;
    }
    return std::sqrt(acc);
  };
  probe.initial_distance = distance(x);

  double t = 0.0;
  while (t < t_end) {
    ode::rk4_step(rhs, t, step, x);
    for (double& v : x) v = std::max(0.0, v);  // rates/queues stay physical
    t += step;
  }

  probe.final_state = x;
  probe.final_distance = distance(x);
  const double scale = linalg::norm2(equilibrium);
  probe.converged = probe.final_distance <= tolerance_frac * std::max(1.0, scale);
  return probe;
}

}  // namespace bbrmodel::analysis
