// Closed-form equilibria of the reduced BBR models (paper Theorems 1, 3, 4).
#pragma once

#include <vector>

#include "analysis/reduced_models.h"

namespace bbrmodel::analysis {

/// Theorem 1 (BBRv1, deep buffer): equilibrium requires the queuing delay to
/// equal the propagation delay for every sender; with a single queued link
/// and uniform delay d that means q* = d·C. Rate splits are arbitrary
/// subject to Σ x^btl = C; this returns the canonical fair split.
struct Bbrv1DeepEquilibrium {
  double queue_pkts = 0.0;            ///< q* = d·C
  std::vector<double> btl_pps;        ///< fair split C/N (one valid choice)
  double required_buffer_pkts = 0.0;  ///< buffer needed to hold q*
};
Bbrv1DeepEquilibrium bbrv1_deep_equilibrium(const BottleneckScenario& s);

/// Theorem 3 (BBRv1, shallow buffer): unique, perfectly fair equilibrium
/// x^btl_i = 5C/(4N+1); the aggregate exceeds capacity, producing a loss
/// rate of (N−1)/(5N) (→ 20 % as N → ∞).
struct Bbrv1ShallowEquilibrium {
  double btl_pps = 0.0;        ///< x* = 5C/(4N+1)
  double aggregate_pps = 0.0;  ///< N·x* = 5NC/(4N+1)
  double loss_rate = 0.0;      ///< (y − C)/y = (N−1)/(5N)
};
Bbrv1ShallowEquilibrium bbrv1_shallow_equilibrium(const BottleneckScenario& s);

/// Theorem 4 (BBRv2): perfectly fair equilibrium with
///   q* = (N−1)/(4N+1)·d·C,  x_i = C/N,  x^btl_i = 5C/(4N+1),
///   δ* = (4N+1)/(5N).
struct Bbrv2Equilibrium {
  double queue_pkts = 0.0;   ///< q*
  double rate_pps = 0.0;     ///< sending rate C/N
  double btl_pps = 0.0;      ///< bandwidth estimate 5C/(4N+1)
  double delta = 0.0;        ///< δ* = (4N+1)/(5N)
};
Bbrv2Equilibrium bbrv2_equilibrium(const BottleneckScenario& s);

/// §5.2.2: BBRv2's equilibrium queue relative to BBRv1's, 1 − (N−1)/(4N+1).
/// Approaches 75 % reduction from below as N → ∞ (i.e., reduction ≥ 75 %).
double bbrv2_buffer_reduction(std::size_t num_senders);

/// State vectors (matching the reduced-model layouts) at the equilibria, for
/// convergence probes and Jacobian evaluation.
std::vector<double> bbrv1_deep_equilibrium_state(const BottleneckScenario& s);
std::vector<double> bbrv1_shallow_equilibrium_state(
    const BottleneckScenario& s);
std::vector<double> bbrv2_equilibrium_state(const BottleneckScenario& s);

}  // namespace bbrmodel::analysis
