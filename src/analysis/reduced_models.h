// Reduced BBR fluid models for theoretical analysis (paper §5.1.1, §5.2.1).
//
// The full fluid models (src/core) contain delays, pulses, and mode
// variables; for stability analysis the paper condenses them into ordinary
// differential systems:
//
//   BBRv1 (deep buffer, Eqs. 33–34):  states {x^btl_i}, q
//     ẋ^btl_i = x^max_i − x^btl_i,   q̇ = Σ_j min(1, Δ_j)·x^btl_j − C,
//     Δ_i = 2·d_i / (d_i + q/C).
//
//   BBRv1 (shallow buffer, Thm. 3):   states {x^btl_i}, q ≡ B (full)
//     ẋ_i = 5/4·x_i·C / (5/4·x_i + Σ_{j≠i} x_j) − x_i.
//
//   BBRv1 aggregate (Thm. 2 proof, Eqs. 44–46): states y, q
//     ẏ = −y²/(C·(d + q/C)) + (1/(d + q/C) − 1)·y + Δ(q)·C,
//     q̇ = y − C.
//
//   BBRv2 (Eqs. 59–60):               states {x_i}, q
//     ẋ_i = [ (C − Σ_k x_k)/(C·(d + q/C))
//             + (5/4·δ·C)/(5/4·x_i + Σ_{j≠i} x_j) − 1 ]·x_i,
//     q̇ = Σ_i x_i − C,   δ = d/(d + q/C).
//
// All right-hand sides are exposed as ode::OdeRhs over plain state vectors
// so they can be integrated, probed for equilibria, and differentiated
// numerically.
#pragma once

#include <vector>

#include "ode/steppers.h"

namespace bbrmodel::analysis {

/// A single-bottleneck scenario: N senders, one shared link.
struct BottleneckScenario {
  double capacity_pps = 0.0;            ///< C_ℓ*
  std::vector<double> prop_delay_s;     ///< d_i per sender (RTT propagation)
  double buffer_pkts = -1.0;            ///< B_ℓ*; negative = unbounded

  std::size_t num_senders() const { return prop_delay_s.size(); }
  /// Scenario with a common propagation delay d for all senders.
  static BottleneckScenario uniform(std::size_t n, double capacity_pps,
                                    double prop_delay_s,
                                    double buffer_pkts = -1.0);
};

/// Δ_i = 2 d_i / (d_i + q/C): the BBRv1 congestion-window rate factor.
double window_factor_v1(double prop_delay_s, double queue_pkts,
                        double capacity_pps);

/// δ_i = d_i / (d_i + q/C): the BBRv2 window rate factor (= Δ_i / 2).
double window_factor_v2(double prop_delay_s, double queue_pkts,
                        double capacity_pps);

/// BBRv1 reduced model. State layout: [x^btl_0 … x^btl_{N−1}, q].
/// Implements Eqs. (33)–(34) with the queue clamped at 0 (and at B if
/// bounded) through one-sided drift suppression.
ode::OdeRhs bbrv1_reduced_rhs(const BottleneckScenario& scenario);

/// BBRv1 shallow-buffer model (Thm. 3 regime). State layout: [x_0 … x_{N−1}].
ode::OdeRhs bbrv1_shallow_rhs(const BottleneckScenario& scenario);

/// BBRv1 aggregate 2-state model from the proof of Thm. 2 (Eqs. 44–46);
/// requires a uniform propagation delay. State layout: [y, q].
ode::OdeRhs bbrv1_aggregate_rhs(const BottleneckScenario& scenario);

/// BBRv2 reduced model (Eqs. 59–60). State layout: [x_0 … x_{N−1}, q].
ode::OdeRhs bbrv2_reduced_rhs(const BottleneckScenario& scenario);

/// Evaluate a right-hand side once (convenience for equilibrium residuals).
std::vector<double> eval_rhs(const ode::OdeRhs& rhs,
                             const std::vector<double>& state);

}  // namespace bbrmodel::analysis
