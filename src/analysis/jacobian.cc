#include "analysis/jacobian.h"

#include <algorithm>
#include <cmath>

#include "common/require.h"

namespace bbrmodel::analysis {
namespace {

double uniform_delay(const BottleneckScenario& s) {
  const double d = s.prop_delay_s.front();
  for (double di : s.prop_delay_s) {
    BBRM_REQUIRE_MSG(std::abs(di - d) < 1e-12,
                     "analytic Jacobians assume a uniform delay");
  }
  return d;
}

void sort_spectrum(std::vector<linalg::Complex>& eigs) {
  std::sort(eigs.begin(), eigs.end(),
            [](const linalg::Complex& a, const linalg::Complex& b) {
              if (a.real() != b.real()) return a.real() > b.real();
              return a.imag() > b.imag();
            });
}

}  // namespace

linalg::Matrix numeric_jacobian(const ode::OdeRhs& rhs,
                                const std::vector<double>& state,
                                double eps) {
  const std::size_t n = state.size();
  BBRM_REQUIRE(n > 0);
  linalg::Matrix jac(n, n);
  std::vector<double> plus(n), minus(n), x = state;
  for (std::size_t k = 0; k < n; ++k) {
    const double h = eps * std::max(1.0, std::abs(state[k]));
    const double saved = x[k];
    x[k] = saved + h;
    rhs(0.0, x, plus);
    x[k] = saved - h;
    rhs(0.0, x, minus);
    x[k] = saved;
    for (std::size_t r = 0; r < n; ++r) {
      jac(r, k) = (plus[r] - minus[r]) / (2.0 * h);
    }
  }
  return jac;
}

linalg::Matrix bbrv1_aggregate_jacobian(const BottleneckScenario& s) {
  const double d = uniform_delay(s);
  return linalg::Matrix{{-1.0 / (2.0 * d) - 1.0, -1.0 / (2.0 * d)},
                        {1.0, 0.0}};
}

std::vector<linalg::Complex> bbrv1_aggregate_eigenvalues(
    const BottleneckScenario& s) {
  const double d = uniform_delay(s);
  std::vector<linalg::Complex> eigs = {{-1.0, 0.0}, {-1.0 / (2.0 * d), 0.0}};
  sort_spectrum(eigs);
  return eigs;
}

linalg::Matrix bbrv1_shallow_jacobian(const BottleneckScenario& s) {
  const auto n = s.num_senders();
  const auto nd = static_cast<double>(n);
  const double jii = -5.0 / (4.0 * nd + 1.0);
  const double jij = -4.0 / (4.0 * nd + 1.0);
  linalg::Matrix jac(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) jac(r, c) = r == c ? jii : jij;
  }
  return jac;
}

std::vector<linalg::Complex> bbrv1_shallow_eigenvalues(
    const BottleneckScenario& s) {
  const auto n = s.num_senders();
  const auto nd = static_cast<double>(n);
  std::vector<linalg::Complex> eigs;
  eigs.emplace_back(-1.0, 0.0);  // J_ii + (N−1)·J_ij
  for (std::size_t k = 0; k + 1 < n; ++k) {
    eigs.emplace_back(-1.0 / (4.0 * nd + 1.0), 0.0);  // J_ii − J_ij
  }
  sort_spectrum(eigs);
  return eigs;
}

linalg::Matrix bbrv2_jacobian(const BottleneckScenario& s) {
  const double d = uniform_delay(s);
  const auto n = s.num_senders();
  const auto nd = static_cast<double>(n);
  const double shared = -(4.0 * nd + 1.0) / (5.0 * nd * nd * d);
  const double jii = shared - 5.0 / (4.0 * nd + 1.0);
  const double jij = shared - 4.0 / (4.0 * nd + 1.0);
  const double jiq = shared;
  linalg::Matrix jac(n + 1, n + 1);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) jac(r, c) = r == c ? jii : jij;
    jac(r, n) = jiq;
    jac(n, r) = 1.0;  // ∂q̇/∂x_i
  }
  jac(n, n) = 0.0;
  return jac;
}

std::vector<linalg::Complex> bbrv2_eigenvalues(const BottleneckScenario& s) {
  const double d = uniform_delay(s);
  const auto n = s.num_senders();
  const auto nd = static_cast<double>(n);
  std::vector<linalg::Complex> eigs;
  // Collapsed quadratic (Eq. 71): (λ + 1)(λ + (4N+1)/(5Nd)) = 0.
  eigs.emplace_back(-1.0, 0.0);
  eigs.emplace_back(-(4.0 * nd + 1.0) / (5.0 * nd * d), 0.0);
  for (std::size_t k = 0; k + 1 < n; ++k) {
    eigs.emplace_back(-1.0 / (4.0 * nd + 1.0), 0.0);  // J_ii − J_ij family
  }
  sort_spectrum(eigs);
  return eigs;
}

}  // namespace bbrmodel::analysis
