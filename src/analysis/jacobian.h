// Jacobians of the reduced models: numeric (central differences) and the
// paper's analytic forms at the equilibria (Eqs. 47–48, 52–54, 61–67).
#pragma once

#include "analysis/reduced_models.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"
#include "ode/steppers.h"

namespace bbrmodel::analysis {

/// Central-difference Jacobian of `rhs` at `state` (step per coordinate:
/// eps·max(1, |state_k|)).
linalg::Matrix numeric_jacobian(const ode::OdeRhs& rhs,
                                const std::vector<double>& state,
                                double eps = 1e-6);

/// Analytic Jacobian of the BBRv1 aggregate (y, q) system at its equilibrium
/// (Eq. 48):  [[−1/(2d) − 1, −1/(2d)], [1, 0]].
linalg::Matrix bbrv1_aggregate_jacobian(const BottleneckScenario& s);

/// Predicted eigenvalues of Eq. (48): {−1, −1/(2d)} (Eq. 49 case split).
std::vector<linalg::Complex> bbrv1_aggregate_eigenvalues(
    const BottleneckScenario& s);

/// Analytic Jacobian of the BBRv1 shallow-buffer system at its fair
/// equilibrium (Eqs. 52–53): J_ii = −5/(4N+1), J_ij = −4/(4N+1).
linalg::Matrix bbrv1_shallow_jacobian(const BottleneckScenario& s);

/// Predicted spectrum of the shallow-buffer Jacobian:
/// −1/(4N+1) with multiplicity N−1, and −1.
std::vector<linalg::Complex> bbrv1_shallow_eigenvalues(
    const BottleneckScenario& s);

/// Analytic Jacobian of the BBRv2 (x_1..x_N, q) system at the Thm. 4
/// equilibrium (Eqs. 65–67):
///   J_ii = −(4N+1)/(5N²d) − 5/(4N+1),
///   J_ij = −(4N+1)/(5N²d) − 4/(4N+1),
///   J_iq = −(4N+1)/(5N²d),   ∂q̇/∂x_i = 1,  ∂q̇/∂q = 0.
linalg::Matrix bbrv2_jacobian(const BottleneckScenario& s);

/// Predicted spectrum of the BBRv2 Jacobian: −1/(4N+1) with multiplicity
/// N−1, plus the roots {−1, −(4N+1)/(5Nd)} of the collapsed quadratic
/// (Eq. 71).
std::vector<linalg::Complex> bbrv2_eigenvalues(const BottleneckScenario& s);

}  // namespace bbrmodel::analysis
