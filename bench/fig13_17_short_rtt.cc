// Figs. 13–17 — Appendix C: the aggregate validation repeated for short
// RTTs (bottleneck delay 5 ms, total RTTs 10–20 ms). One sweep reproduces
// all five figures.
//
// Paper shape: confirms the §4.3 results at shorter delays.
#include "bench_util.h"

int main() {
  using namespace bbrmodel;
  using namespace bbrmodel::bench;
  run_aggregate_figures(
      {
          {"Fig. 13 — Jain fairness (short RTT)",
           [](const metrics::AggregateMetrics& m) { return m.jain; }, 3},
          {"Fig. 14 — Loss [%] (short RTT)",
           [](const metrics::AggregateMetrics& m) { return m.loss_pct; }, 2},
          {"Fig. 15 — Buffer occupancy [%] (short RTT)",
           [](const metrics::AggregateMetrics& m) { return m.occupancy_pct; },
           1},
          {"Fig. 16 — Utilization [%] (short RTT)",
           [](const metrics::AggregateMetrics& m) {
             return m.utilization_pct;
           },
           1},
          {"Fig. 17 — Jitter [ms] (short RTT)",
           [](const metrics::AggregateMetrics& m) { return m.jitter_ms; }, 3},
      },
      short_rtt_spec());
  shape("The short-RTT sweep preserves every §4.3 ranking: BBRv1 lossy/"
        "unfair vs loss-based, BBRv2 benign, RED keeps queues small "
        "(Figs. 13–17).");
  return 0;
}
