// Fig. 4 — BBRv1 trace validation: one flow, 100 Mbps, 31.2 ms RTT, 1 BDP
// buffer, drop-tail and RED; fluid model vs packet experiment.
//
// Paper shape: rate holds ≈100 % with probing wiggles; under drop-tail the
// queue stays high with visible loss bursts; under RED the queue (and hence
// RTT inflation) is much smaller while loss is persistent.
#include "bench_util.h"

int main() {
  using namespace bbrmodel;
  using namespace bbrmodel::bench;
  run_trace_figure("Fig. 4 — BBRv1 trace validation",
                   scenario::CcaKind::kBbrv1, net::Discipline::kDropTail,
                   7.0, 18);
  run_trace_figure("Fig. 4 — BBRv1 trace validation",
                   scenario::CcaKind::kBbrv1, net::Discipline::kRed, 7.0, 18);
  shape("BBRv1 keeps ~100% rate in both disciplines; the drop-tail queue is "
        "persistently high, the RED queue low with steady loss (Fig. 4).");
  return 0;
}
