// Fig. 9 — Utilization validation: bottleneck utilization [%] vs buffer.
//
// Paper shape: BBRv1 (and its mixes) at full utilization everywhere;
// loss-based utilization grows with drop-tail buffer size; homogeneous
// BBRv2 lowest under drop-tail but within a few percent (ProbeRTT cost).
#include "bench_util.h"

int main() {
  using namespace bbrmodel;
  using namespace bbrmodel::bench;
  run_aggregate_figure(
      "Fig. 9 — Utilization [%]",
      [](const metrics::AggregateMetrics& m) { return m.utilization_pct; }, 1,
      validation_spec());
  shape("BBRv1 mixes pin the link at ~100 %; loss-based utilization rises "
        "with drop-tail buffer; BBRv2 gives up a few percent (Fig. 9).");
  return 0;
}
