// Sweep-engine micro-benchmark: wall-clock speedup of the threaded sweep
// over the serial baseline on a reduced aggregate grid, plus the
// cold-vs-warm speedup of the content-addressed cell cache.
//
// Prints a table of thread count vs. elapsed time and emits a
// BENCH_sweep.json summary (tasks, serial/parallel seconds, speedup,
// cache cold/warm seconds) to seed the repo's performance trajectory. The
// result CSVs of all runs — threaded, cached cold, cached warm — are
// compared as a determinism cross-check: a speedup obtained by changing
// the answers would be worthless.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "adaptive/refiner.h"
#include "bench_util.h"
#include "common/json.h"
#include "common/table.h"
#include "common/units.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sweep/cell_cache.h"
#include "sweep/sweep.h"
#include "sweep/thread_pool.h"

int main() {
  using namespace bbrmodel;
  using namespace bbrmodel::bench;
  obs::set_log_program("perf_sweep");

  // A reduced Figs. 6–10 grid: both backends and disciplines, three
  // buffers, four mixes, shorter runs — big enough to amortize pool
  // overhead, small enough for CI.
  scenario::ExperimentSpec base = validation_spec();
  base.duration_s = fast_mode() ? 1.0 : 2.0;
  sweep::ParameterGrid grid;
  grid.buffers_bdp = {1.0, 4.0, 7.0};
  grid.flow_counts = {4};
  grid.rtt_ranges = {{base.min_rtt_s, base.max_rtt_s}};
  grid.mixes = {sweep::homogeneous_mix(scenario::CcaKind::kBbrv1),
                sweep::homogeneous_mix(scenario::CcaKind::kBbrv2),
                sweep::half_half_mix(scenario::CcaKind::kBbrv1,
                                     scenario::CcaKind::kCubic),
                sweep::half_half_mix(scenario::CcaKind::kBbrv2,
                                     scenario::CcaKind::kReno)};

  const std::size_t hardware = sweep::ThreadPool::hardware_threads();
  std::vector<std::size_t> thread_counts = {1};
  if (hardware >= 2) thread_counts.push_back(2);
  if (hardware > 2) thread_counts.push_back(hardware);

  std::printf("%s", banner("Sweep-engine speedup — " +
                           std::to_string(grid.cardinality()) +
                           " experiments").c_str());

  Table table({"threads", "elapsed[s]", "tasks/s", "speedup"});
  double serial_s = 0.0, best_parallel_s = 0.0;
  std::string reference_csv;
  for (const std::size_t threads : thread_counts) {
    sweep::SweepOptions options;
    options.threads = threads;
    const auto result = sweep::run_sweep(grid, base, options);

    std::ostringstream csv;
    result.write_csv(csv);
    if (reference_csv.empty()) {
      reference_csv = csv.str();
    } else if (csv.str() != reference_csv) {
      obs::log(obs::LogLevel::kError, "FAIL: results changed with %zu threads",
               threads);
      return 1;
    }

    if (threads == 1) serial_s = result.elapsed_s();
    best_parallel_s = result.elapsed_s();
    table.add_numeric_row(
        std::to_string(threads),
        {result.elapsed_s(), result.size() / result.elapsed_s(),
         serial_s / result.elapsed_s()},
        2);
  }
  std::printf("%s\n", table.to_string().c_str());

  const double speedup = serial_s / best_parallel_s;

  // ---- Batched SoA fluid engine vs scalar, single core --------------------
  // The reference grid of the speedup gate: fluid-only cells that all share
  // duration and step, so the whole grid batches. batch_cells = 1 forces
  // the scalar FluidSimulation path; the default groups cells through
  // core/batch_engine.h. Same bytes, or the speedup is worthless.
  sweep::ParameterGrid fluid_grid = grid;
  fluid_grid.backends = {sweep::Backend::kFluid};
  fluid_grid.disciplines = {net::Discipline::kDropTail};
  fluid_grid.buffers_bdp = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};

  struct RunnerGauge {
    std::string name;
    std::size_t cells = 0;
    double elapsed_s = 0.0;
    double cells_per_s = 0.0;
    double ns_per_sim_s = 0.0;  ///< wall nanoseconds per simulated second
  };
  std::vector<RunnerGauge> gauges;
  const auto gauge_of = [&](std::string name,
                            const sweep::SweepResult& result,
                            double sim_s_per_cell) {
    RunnerGauge g;
    g.name = std::move(name);
    g.cells = result.size();
    g.elapsed_s = result.elapsed_s();
    g.cells_per_s = static_cast<double>(result.size()) / result.elapsed_s();
    g.ns_per_sim_s = result.elapsed_s() * 1e9 /
                     (static_cast<double>(result.size()) * sim_s_per_cell);
    return g;
  };

  sweep::SweepOptions one_core;
  one_core.threads = 1;
  one_core.batch_cells = 1;
  const auto fluid_scalar = sweep::run_sweep(fluid_grid, base, one_core);
  one_core.batch_cells = 0;  // the runner's preferred batch
  const auto fluid_batched = sweep::run_sweep(fluid_grid, base, one_core);

  std::ostringstream scalar_csv, batched_csv;
  fluid_scalar.write_csv(scalar_csv);
  fluid_batched.write_csv(batched_csv);
  if (scalar_csv.str() != batched_csv.str()) {
    obs::log(obs::LogLevel::kError,
             "FAIL: batched fluid results differ from scalar");
    return 1;
  }
  const double batch_speedup =
      fluid_scalar.elapsed_s() / fluid_batched.elapsed_s();
  gauges.push_back(gauge_of("fluid", fluid_scalar, base.duration_s));
  gauges.push_back(gauge_of("fluid_batch", fluid_batched, base.duration_s));

  // Reduced (closed-form) and packet gauges, for the trajectory record.
  {
    sweep::ParameterGrid reduced_grid = fluid_grid;
    reduced_grid.backends = {sweep::Backend::kReduced};
    reduced_grid.mixes = {sweep::homogeneous_mix(scenario::CcaKind::kBbrv1),
                          sweep::homogeneous_mix(scenario::CcaKind::kBbrv2)};
    const auto reduced = sweep::run_sweep(reduced_grid, base, one_core);
    gauges.push_back(gauge_of("reduced", reduced, base.duration_s));

    sweep::ParameterGrid packet_grid = fluid_grid;
    packet_grid.backends = {sweep::Backend::kPacket};
    packet_grid.buffers_bdp = {1.0, 4.0};
    packet_grid.mixes = {sweep::homogeneous_mix(scenario::CcaKind::kBbrv1)};
    const auto packet = sweep::run_sweep(packet_grid, base, one_core);
    gauges.push_back(gauge_of("packet", packet, base.duration_s));
  }

  std::printf("%s", banner("Batched SoA fluid engine — " +
                           std::to_string(fluid_grid.cardinality()) +
                           " cells, 1 thread").c_str());
  Table batch_table({"runner", "cells", "elapsed[s]", "cells/s",
                     "ns/sim-s"});
  for (const auto& g : gauges) {
    batch_table.add_row({g.name, std::to_string(g.cells),
                         format_double(g.elapsed_s, 2),
                         format_double(g.cells_per_s, 2),
                         format_double(g.ns_per_sim_s, 0)});
  }
  std::printf("%s\n", batch_table.to_string().c_str());
  std::printf("fluid batch speedup vs scalar: %.2fx (single core)\n\n",
              batch_speedup);

  // Regression floor, not the typical figure: the batch engine measures
  // ~1.6-2x on this grid (see README § Performance — the bit-identity
  // contract pins every floating-point operation of the scalar path, so
  // batching can only remove allocation, call, and indexing overhead, and
  // the scalar engine's per-step math is the majority of its runtime).
  // The floor sits below the typical range so shared-runner noise doesn't
  // flake the gate, but a batching regression to parity still fails.
  const double kMinBatchSpeedup = 1.3;
  if (!(batch_speedup >= kMinBatchSpeedup)) {
    obs::log(obs::LogLevel::kError,
             "FAIL: batched fluid engine %.2fx vs scalar, need >= "
             "%.1fx on the reference grid",
             batch_speedup, kMinBatchSpeedup);
    return 1;
  }

  // Cold vs. warm cell cache on the same grid: the cold run pays the
  // simulations once and fills the store; the warm run must reproduce the
  // same bytes from cache alone (zero runner invocations).
  const std::string cache_dir = "BENCH_sweep_cache";
  std::filesystem::remove_all(cache_dir);
  double cold_s = 0.0, warm_s = 0.0;
  std::size_t warm_hits = 0;
  {
    sweep::CellCache cache(cache_dir);
    sweep::SweepOptions options;
    options.cache = &cache;
    const auto cold = sweep::run_sweep(grid, base, options);
    cold_s = cold.elapsed_s();
    const auto warm = sweep::run_sweep(grid, base, options);
    warm_s = warm.elapsed_s();
    warm_hits = cache.hits();

    std::ostringstream cold_csv, warm_csv;
    cold.write_csv(cold_csv);
    warm.write_csv(warm_csv);
    if (cold_csv.str() != reference_csv || warm_csv.str() != reference_csv) {
      obs::log(obs::LogLevel::kError,
               "FAIL: cached results drifted from the live run");
      return 1;
    }
  }
  std::filesystem::remove_all(cache_dir);

  Table cache_table({"cache", "elapsed[s]", "tasks/s", "speedup vs cold"});
  cache_table.add_numeric_row(
      "cold", {cold_s, grid.cardinality() / cold_s, 1.0}, 2);
  cache_table.add_numeric_row(
      "warm", {warm_s, grid.cardinality() / warm_s, cold_s / warm_s}, 2);
  std::printf("%s\n", cache_table.to_string().c_str());

  // Adaptive vs dense: the BBRv1 loss knee over the buffer axis. The
  // dense sweep simulates the fluid model at every 0.25-BDP step; the
  // adaptive sweep triages a 7-point coarse grid with the closed-form
  // reduced runner (instant), subdivides only around the knee, and pays
  // the fluid price on the refined cells alone. Both must locate the
  // knee — the buffer where loss crosses 2 % — at the same place.
  const auto wall_now = [] {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  };
  sweep::ParameterGrid knee_grid;
  knee_grid.backends = {sweep::Backend::kFluid};
  knee_grid.disciplines = {net::Discipline::kDropTail};
  knee_grid.flow_counts = {4};
  knee_grid.rtt_ranges = {{base.min_rtt_s, base.max_rtt_s}};
  knee_grid.mixes = {sweep::homogeneous_mix(scenario::CcaKind::kBbrv1),
                     sweep::homogeneous_mix(scenario::CcaKind::kBbrv2)};

  const double kKneeDenseStep = 0.25;
  sweep::ParameterGrid dense_grid = knee_grid;
  dense_grid.buffers_bdp.clear();
  for (double b = 0.25; b <= 7.0 + 1e-9; b += kKneeDenseStep) {
    dense_grid.buffers_bdp.push_back(b);
  }
  sweep::ParameterGrid coarse_grid = knee_grid;
  coarse_grid.buffers_bdp = {0.25, 1.375, 2.5, 3.625, 4.75, 5.875, 7.0};

  double dense_wall_s = 0.0, adaptive_wall_s = 0.0;
  double t0 = wall_now();
  const auto dense = sweep::run_sweep(dense_grid, base, sweep::SweepOptions{});
  dense_wall_s = wall_now() - t0;

  adaptive::RefinementPolicy policy;
  policy.metrics = {adaptive::RefineMetric::kLoss};
  policy.threshold = 0.02;  // 2 % loss movement flags an interval
  policy.max_depth = 3;     // 1.125-BDP coarse step → 0.14 at the knee
  sweep::SweepOptions adaptive_options;  // triage defaults to reduced
  adaptive_options.refine = &policy;
  t0 = wall_now();
  const auto refined = sweep::run_sweep(coarse_grid, base, adaptive_options);
  adaptive_wall_s = wall_now() - t0;

  // The knee of one mix: buffer where loss crosses 2 %, interpolated
  // between the bracketing evaluated cells (rows of an adaptive sweep
  // arrive in canonical-spec order, so sort by buffer first).
  const auto loss_knee = [](const sweep::SweepResult& result,
                            const std::string& mix) {
    std::vector<std::pair<double, double>> curve;
    for (const auto& row : result.rows()) {
      if (row.task.mix_label == mix) {
        curve.emplace_back(row.task.spec.buffer_bdp, row.metrics.loss_pct);
      }
    }
    std::sort(curve.begin(), curve.end());
    constexpr double kLevel = 2.0;
    for (std::size_t i = 1; i < curve.size(); ++i) {
      const auto [b0, l0] = curve[i - 1];
      const auto [b1, l1] = curve[i];
      if (l0 > kLevel && l1 <= kLevel) {
        return b0 + (l0 - kLevel) / (l0 - l1) * (b1 - b0);
      }
    }
    return std::nan("");
  };
  const double dense_knee = loss_knee(dense, "BBRv1");
  const double adaptive_knee = loss_knee(refined, "BBRv1");
  const double knee_err = std::abs(adaptive_knee - dense_knee);
  const double cell_ratio = static_cast<double>(refined.size()) /
                            static_cast<double>(dense.size());
  const double kKneeTolerance = 0.5;  // BDP

  std::printf("%s", banner("Adaptive vs dense — BBRv1 loss knee over the "
                           "buffer axis").c_str());
  Table knee_table({"sweep", "cells", "knee[BDP]", "elapsed[s]",
                    "vs dense"});
  knee_table.add_row({"dense", std::to_string(dense.size()),
                      format_double(dense_knee, 2),
                      format_double(dense_wall_s, 2), "1.00"});
  knee_table.add_row({"adaptive", std::to_string(refined.size()),
                      format_double(adaptive_knee, 2),
                      format_double(adaptive_wall_s, 2),
                      format_double(adaptive_wall_s / dense_wall_s, 2)});
  std::printf("%s\n", knee_table.to_string().c_str());

  if (!(knee_err <= kKneeTolerance) || cell_ratio > 0.40) {
    obs::log(obs::LogLevel::kError,
             "FAIL: adaptive knee %.3f vs dense %.3f BDP (tolerance "
             "%.2f) at %.0f%% of the dense cells",
             adaptive_knee, dense_knee, kKneeTolerance, 100.0 * cell_ratio);
    return 1;
  }

  // ---- telemetry off-cost gate --------------------------------------------
  // Every cell pays the instrumentation hooks even with tracing disabled:
  // a handful of dead-Span constructions (one relaxed load + branch each)
  // and always-on registry updates. Price the primitives in tight loops
  // (Span's constructor lives in another TU, so the calls can't fold away
  // without LTO; counter/histogram updates are atomics with side effects)
  // and bound the per-cell cost against the fastest runner — the reduced
  // closed-form cells, whose microsecond runtimes leave the least room to
  // hide overhead in.
  obs::Tracer::global().flush();  // make sure spans take the disabled path
  const auto bench_ns = [&](auto&& fn) {
    constexpr std::size_t kIters = 2'000'000;
    const double t0 = wall_now();
    for (std::size_t i = 0; i < kIters; ++i) fn(i);
    return (wall_now() - t0) * 1e9 / static_cast<double>(kIters);
  };
  const double span_ns =
      bench_ns([](std::size_t) { obs::Span span("bench-span", "bench"); });
  // Price the single-writer shards the per-cell path actually uses, not
  // the CAS-looped shared cells reserved for rare events.
  auto& bench_counter =
      obs::Registry::global().counter("bench.counter").shard();
  const double counter_ns =
      bench_ns([&](std::size_t) { bench_counter.add(); });
  auto& bench_hist = obs::Registry::global().histogram("bench.hist").shard();
  const double hist_ns = bench_ns(
      [&](std::size_t i) { bench_hist.observe(static_cast<double>(i & 1023)); });

  // A scalar cell's instrumentation budget: the run + cache-probe spans,
  // the cells + cache-hit/miss counter bumps, and the wall-time histogram
  // observation (engine-layer counters amortize over whole batches).
  const double trace_off_cell_ns =
      2.0 * span_ns + 2.0 * counter_ns + 1.0 * hist_ns;
  double fastest_cell_ns = 0.0;
  for (const auto& g : gauges) {
    const double per_cell_ns = 1e9 / g.cells_per_s;
    if (fastest_cell_ns == 0.0 || per_cell_ns < fastest_cell_ns) {
      fastest_cell_ns = per_cell_ns;
    }
  }
  const double trace_off_overhead_pct =
      100.0 * trace_off_cell_ns / fastest_cell_ns;

  std::printf("%s", banner("Telemetry cost with tracing off").c_str());
  Table trace_table({"primitive", "ns/op"});
  trace_table.add_row({"dead span", format_double(span_ns, 2)});
  trace_table.add_row({"counter add", format_double(counter_ns, 2)});
  trace_table.add_row({"histogram observe", format_double(hist_ns, 2)});
  std::printf("%s\n", trace_table.to_string().c_str());
  std::printf("per-cell instrumentation: %.0f ns = %.3f%% of the fastest "
              "cell (%.0f ns)\n\n",
              trace_off_cell_ns, trace_off_overhead_pct, fastest_cell_ns);

  const double kMaxTraceOverheadPct = 2.0;
  if (!(trace_off_overhead_pct <= kMaxTraceOverheadPct)) {
    obs::log(obs::LogLevel::kError,
             "FAIL: tracing-disabled instrumentation costs %.3f%% of "
             "the fastest cell, need <= %.1f%%",
             trace_off_overhead_pct, kMaxTraceOverheadPct);
    return 1;
  }

  std::ofstream json_out("BENCH_sweep.json");
  JsonWriter j(json_out);
  j.begin_object();
  j.key("bench").value("sweep_engine");
  j.key("tasks").value(static_cast<std::uint64_t>(grid.cardinality()));
  j.key("sim_seconds_per_task").value(base.duration_s);
  j.key("hardware_threads").value(static_cast<std::uint64_t>(hardware));
  j.key("serial_s").value(serial_s);
  j.key("parallel_s").value(best_parallel_s);
  j.key("speedup").value(speedup);
  j.key("cache_cold_s").value(cold_s);
  j.key("cache_warm_s").value(warm_s);
  j.key("cache_speedup").value(cold_s / warm_s);
  j.key("cache_warm_hits").value(static_cast<std::uint64_t>(warm_hits));
  j.key("batch_cells").value(
      static_cast<std::uint64_t>(fluid_grid.cardinality()));
  j.key("batch_scalar_s").value(fluid_scalar.elapsed_s());
  j.key("batch_batched_s").value(fluid_batched.elapsed_s());
  j.key("batch_speedup").value(batch_speedup);
  j.key("runners").begin_object();
  for (const auto& g : gauges) {
    j.key(g.name).begin_object();
    j.key("cells").value(static_cast<std::uint64_t>(g.cells));
    j.key("elapsed_s").value(g.elapsed_s);
    j.key("cells_per_s").value(g.cells_per_s);
    j.key("ns_per_sim_s").value(g.ns_per_sim_s);
    j.end_object();
  }
  j.end_object();
  j.key("adaptive_dense_cells").value(
      static_cast<std::uint64_t>(dense.size()));
  j.key("adaptive_cells").value(static_cast<std::uint64_t>(refined.size()));
  j.key("adaptive_cell_ratio").value(cell_ratio);
  j.key("adaptive_dense_s").value(dense_wall_s);
  j.key("adaptive_s").value(adaptive_wall_s);
  j.key("adaptive_wallclock_ratio").value(adaptive_wall_s / dense_wall_s);
  j.key("adaptive_knee_dense_bdp").value(dense_knee);
  j.key("adaptive_knee_bdp").value(adaptive_knee);
  j.key("adaptive_knee_abs_err_bdp").value(knee_err);
  j.key("trace_off_span_ns").value(span_ns);
  j.key("trace_off_counter_ns").value(counter_ns);
  j.key("trace_off_hist_ns").value(hist_ns);
  j.key("trace_off_cell_ns").value(trace_off_cell_ns);
  j.key("trace_off_overhead_pct").value(trace_off_overhead_pct);
  j.key("deterministic").value(true);
  j.end_object();
  json_out << '\n';
  std::printf(
      "wrote BENCH_sweep.json (speedup %.2fx on %zu threads, warm cache "
      "%.0fx, adaptive %.0f%% of dense cells at %.2fx wall-clock)\n",
      speedup, thread_counts.back(), cold_s / warm_s, 100.0 * cell_ratio,
      adaptive_wall_s / dense_wall_s);

  shape("The threaded sweep reproduces the serial results byte-for-byte "
        "while scaling with available cores; a warm cell cache replays it "
        "with zero simulation work; reduced-theory triage steers the "
        "fluid sweep to the loss knee at a fraction of the dense cells.");
  return 0;
}
