// Sweep-engine micro-benchmark: wall-clock speedup of the threaded sweep
// over the serial baseline on a reduced aggregate grid, plus the
// cold-vs-warm speedup of the content-addressed cell cache.
//
// Prints a table of thread count vs. elapsed time and emits a
// BENCH_sweep.json summary (tasks, serial/parallel seconds, speedup,
// cache cold/warm seconds) to seed the repo's performance trajectory. The
// result CSVs of all runs — threaded, cached cold, cached warm — are
// compared as a determinism cross-check: a speedup obtained by changing
// the answers would be worthless.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "common/table.h"
#include "common/units.h"
#include "sweep/cell_cache.h"
#include "sweep/sweep.h"
#include "sweep/thread_pool.h"

int main() {
  using namespace bbrmodel;
  using namespace bbrmodel::bench;

  // A reduced Figs. 6–10 grid: both backends and disciplines, three
  // buffers, four mixes, shorter runs — big enough to amortize pool
  // overhead, small enough for CI.
  scenario::ExperimentSpec base = validation_spec();
  base.duration_s = fast_mode() ? 1.0 : 2.0;
  sweep::ParameterGrid grid;
  grid.buffers_bdp = {1.0, 4.0, 7.0};
  grid.flow_counts = {4};
  grid.rtt_ranges = {{base.min_rtt_s, base.max_rtt_s}};
  grid.mixes = {sweep::homogeneous_mix(scenario::CcaKind::kBbrv1),
                sweep::homogeneous_mix(scenario::CcaKind::kBbrv2),
                sweep::half_half_mix(scenario::CcaKind::kBbrv1,
                                     scenario::CcaKind::kCubic),
                sweep::half_half_mix(scenario::CcaKind::kBbrv2,
                                     scenario::CcaKind::kReno)};

  const std::size_t hardware = sweep::ThreadPool::hardware_threads();
  std::vector<std::size_t> thread_counts = {1};
  if (hardware >= 2) thread_counts.push_back(2);
  if (hardware > 2) thread_counts.push_back(hardware);

  std::printf("%s", banner("Sweep-engine speedup — " +
                           std::to_string(grid.cardinality()) +
                           " experiments").c_str());

  Table table({"threads", "elapsed[s]", "tasks/s", "speedup"});
  double serial_s = 0.0, best_parallel_s = 0.0;
  std::string reference_csv;
  for (const std::size_t threads : thread_counts) {
    sweep::SweepOptions options;
    options.threads = threads;
    const auto result = sweep::run_sweep(grid, base, options);

    std::ostringstream csv;
    result.write_csv(csv);
    if (reference_csv.empty()) {
      reference_csv = csv.str();
    } else if (csv.str() != reference_csv) {
      std::fprintf(stderr, "FAIL: results changed with %zu threads\n",
                   threads);
      return 1;
    }

    if (threads == 1) serial_s = result.elapsed_s();
    best_parallel_s = result.elapsed_s();
    table.add_numeric_row(
        std::to_string(threads),
        {result.elapsed_s(), result.size() / result.elapsed_s(),
         serial_s / result.elapsed_s()},
        2);
  }
  std::printf("%s\n", table.to_string().c_str());

  const double speedup = serial_s / best_parallel_s;

  // Cold vs. warm cell cache on the same grid: the cold run pays the
  // simulations once and fills the store; the warm run must reproduce the
  // same bytes from cache alone (zero runner invocations).
  const std::string cache_dir = "BENCH_sweep_cache";
  std::filesystem::remove_all(cache_dir);
  double cold_s = 0.0, warm_s = 0.0;
  std::size_t warm_hits = 0;
  {
    sweep::CellCache cache(cache_dir);
    sweep::SweepOptions options;
    options.cache = &cache;
    const auto cold = sweep::run_sweep(grid, base, options);
    cold_s = cold.elapsed_s();
    const auto warm = sweep::run_sweep(grid, base, options);
    warm_s = warm.elapsed_s();
    warm_hits = cache.hits();

    std::ostringstream cold_csv, warm_csv;
    cold.write_csv(cold_csv);
    warm.write_csv(warm_csv);
    if (cold_csv.str() != reference_csv || warm_csv.str() != reference_csv) {
      std::fprintf(stderr, "FAIL: cached results drifted from the live run\n");
      return 1;
    }
  }
  std::filesystem::remove_all(cache_dir);

  Table cache_table({"cache", "elapsed[s]", "tasks/s", "speedup vs cold"});
  cache_table.add_numeric_row(
      "cold", {cold_s, grid.cardinality() / cold_s, 1.0}, 2);
  cache_table.add_numeric_row(
      "warm", {warm_s, grid.cardinality() / warm_s, cold_s / warm_s}, 2);
  std::printf("%s\n", cache_table.to_string().c_str());

  std::ofstream json_out("BENCH_sweep.json");
  JsonWriter j(json_out);
  j.begin_object();
  j.key("bench").value("sweep_engine");
  j.key("tasks").value(static_cast<std::uint64_t>(grid.cardinality()));
  j.key("sim_seconds_per_task").value(base.duration_s);
  j.key("hardware_threads").value(static_cast<std::uint64_t>(hardware));
  j.key("serial_s").value(serial_s);
  j.key("parallel_s").value(best_parallel_s);
  j.key("speedup").value(speedup);
  j.key("cache_cold_s").value(cold_s);
  j.key("cache_warm_s").value(warm_s);
  j.key("cache_speedup").value(cold_s / warm_s);
  j.key("cache_warm_hits").value(static_cast<std::uint64_t>(warm_hits));
  j.key("deterministic").value(true);
  j.end_object();
  json_out << '\n';
  std::printf(
      "wrote BENCH_sweep.json (speedup %.2fx on %zu threads, warm cache "
      "%.0fx)\n",
      speedup, thread_counts.back(), cold_s / warm_s);

  shape("The threaded sweep reproduces the serial results byte-for-byte "
        "while scaling with available cores; a warm cell cache replays it "
        "with zero simulation work.");
  return 0;
}
