// Fig. 7 — Loss validation: loss [%] vs buffer size for the seven mixes,
// drop-tail and RED (the paper's zoomed panels are the same data read at
// the <1.5 % scale).
//
// Paper shape: BBRv1 mixes lose up to ~20 %, inversely proportional to
// drop-tail buffer size and roughly constant under RED; loss-sensitive
// mixes stay ≈1 % and fall to 0 with growing drop-tail buffers.
#include "bench_util.h"

int main() {
  using namespace bbrmodel;
  using namespace bbrmodel::bench;
  run_aggregate_figure(
      "Fig. 7 — Loss [%]",
      [](const metrics::AggregateMetrics& m) { return m.loss_pct; }, 2,
      validation_spec());
  shape("BBRv1 rows carry order-of-magnitude more loss than loss-sensitive "
        "rows; drop-tail loss falls with buffer size, RED loss stays "
        "roughly constant (Fig. 7).");
  return 0;
}
