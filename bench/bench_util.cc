#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/table.h"
#include "common/units.h"
#include "metrics/series.h"

namespace bbrmodel::bench {

bool fast_mode() { return std::getenv("BBRM_BENCH_FAST") != nullptr; }

std::vector<double> buffer_sweep() {
  if (fast_mode()) return {1.0, 4.0, 7.0};
  return {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0};
}

scenario::ExperimentSpec validation_spec() {
  scenario::ExperimentSpec spec;
  spec.capacity_pps = mbps_to_pps(100.0);
  spec.bottleneck_delay_s = 0.010;
  spec.min_rtt_s = 0.030;
  spec.max_rtt_s = 0.040;
  spec.duration_s = 5.0;
  spec.fluid.step_s = 50e-6;
  return spec;
}

scenario::ExperimentSpec short_rtt_spec() {
  scenario::ExperimentSpec spec = validation_spec();
  spec.bottleneck_delay_s = 0.005;  // Appendix C set-up
  spec.min_rtt_s = 0.010;
  spec.max_rtt_s = 0.020;
  return spec;
}

void shape(const std::string& line) {
  std::printf("SHAPE: %s\n", line.c_str());
}

void run_aggregate_figure(const std::string& title, const MetricFn& metric,
                          int precision,
                          const scenario::ExperimentSpec& base) {
  run_aggregate_figures({FigureMetric{title, metric, precision}}, base);
}

std::size_t sweep_threads() {
  const char* env = std::getenv("BBRM_SWEEP_THREADS");
  if (env == nullptr) return 0;  // hardware concurrency
  const long parsed = std::strtol(env, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : 0;
}

sweep::CellCache* sweep_cache() {
  static std::unique_ptr<sweep::CellCache> cache = [] {
    const char* dir = std::getenv("BBRM_SWEEP_CACHE");
    return dir ? std::make_unique<sweep::CellCache>(dir) : nullptr;
  }();
  return cache.get();
}

sweep::SweepOptions bench_sweep_options(std::uint64_t base_seed) {
  sweep::SweepOptions options;
  options.threads = sweep_threads();
  options.base_seed = base_seed;
  options.cache = sweep_cache();
  return options;
}

sweep::ParameterGrid aggregate_grid(const scenario::ExperimentSpec& base) {
  sweep::ParameterGrid grid;  // paper defaults: backends, disciplines, mixes
  grid.buffers_bdp = buffer_sweep();
  grid.flow_counts = {10};
  grid.rtt_ranges = {{base.min_rtt_s, base.max_rtt_s}};
  return grid;
}

void run_aggregate_figures(const std::vector<FigureMetric>& figures,
                           const scenario::ExperimentSpec& base) {
  // One parallel sweep covers every (backend, discipline, buffer, mix)
  // cell of all requested figures; the tables below just re-bin it.
  const auto grid = aggregate_grid(base);
  const auto result =
      sweep::run_sweep(grid, base, bench_sweep_options(base.seed));

  // The tables below read backend slot 0 as "Model" and 1 as "Experiment";
  // pin that to the grid rather than trusting the default axis order.
  BBRM_REQUIRE_MSG(grid.backends.size() == 2 &&
                       grid.backends[0] == sweep::Backend::kFluid &&
                       grid.backends[1] == sweep::Backend::kPacket,
                   "aggregate figures need backends = {fluid, packet}");

  const auto& buffers = grid.buffers_bdp;
  // cells[backend][discipline][buffer][mix]
  std::vector<metrics::AggregateMetrics> flat(result.size());
  const auto cell_at = [&](std::size_t backend, std::size_t disc,
                           std::size_t buffer,
                           std::size_t mix) -> metrics::AggregateMetrics& {
    return flat[((backend * grid.disciplines.size() + disc) * buffers.size() +
                 buffer) *
                    grid.mixes.size() +
                mix];
  };
  for (const auto& r : result.rows()) {
    cell_at(r.task.at.backend, r.task.at.discipline, r.task.at.buffer,
            r.task.at.mix) = r.metrics;
  }

  std::vector<std::string> headers = {"buffer[BDP]"};
  for (const auto& mix : grid.mixes) headers.push_back(mix.label);

  for (std::size_t d = 0; d < grid.disciplines.size(); ++d) {
    const auto disc = grid.disciplines[d];
    for (const auto& fig : figures) {
      std::printf("%s",
                  banner(fig.title + " — " + net::to_string(disc)).c_str());
      Table model_table(headers);
      Table experiment_table(headers);
      for (std::size_t b = 0; b < buffers.size(); ++b) {
        std::vector<double> model_row, experiment_row;
        for (std::size_t m = 0; m < grid.mixes.size(); ++m) {
          model_row.push_back(fig.metric(cell_at(0, d, b, m)));
          experiment_row.push_back(fig.metric(cell_at(1, d, b, m)));
        }
        model_table.add_numeric_row(format_double(buffers[b], 0), model_row,
                                    fig.precision);
        experiment_table.add_numeric_row(format_double(buffers[b], 0),
                                         experiment_row, fig.precision);
      }
      std::printf("Model:\n%s\nExperiment:\n%s\n",
                  model_table.to_string().c_str(),
                  experiment_table.to_string().c_str());
    }
  }
}

void run_trace_figure(const std::string& title, scenario::CcaKind kind,
                      net::Discipline discipline, double duration_s,
                      std::size_t print_rows) {
  scenario::ExperimentSpec spec = validation_spec();
  spec.mix = scenario::homogeneous(kind, 1);
  // §4.2: d_ℓ1 = 5.6 ms access delay → RTT = 2·(10 + 5.6) ms = 31.2 ms.
  spec.min_rtt_s = 0.0312;
  spec.max_rtt_s = 0.0312;
  spec.buffer_bdp = 1.0;
  spec.discipline = discipline;
  spec.duration_s = duration_s;
  spec.fluid.step_s = 10e-6;  // the paper's trace step

  std::printf("%s", banner(title + " — " + net::to_string(discipline)).c_str());

  // Model side.
  auto fluid = scenario::build_fluid(spec);
  fluid.sim->run(duration_s);
  const auto& trace = fluid.sim->trace();
  const auto& topo = fluid.sim->topology();
  const double cap = spec.capacity_pps;
  const double buffer = topo.link(fluid.bottleneck_link).buffer_pkts;
  const double prop = topo.path_delays(0).rtt_prop_s;

  const auto rate = metrics::rate_percent(trace, 0, cap);
  const auto queue = metrics::queue_percent(trace, fluid.bottleneck_link,
                                            buffer);
  const auto loss = metrics::loss_percent(trace, fluid.bottleneck_link);
  const auto rtt = metrics::rtt_excess_percent(trace, 0, prop);
  const std::size_t factor =
      std::max<std::size_t>(1, trace.size() / print_rows);

  Table model_table({"t[s]", "rate[%C]", "queue[%B]", "loss[%]", "rtt[+%]"});
  const auto times = metrics::trace_times(trace);
  const auto t_ds = metrics::downsample(times, factor);
  const auto r_ds = metrics::downsample(rate.values, factor);
  const auto q_ds = metrics::downsample(queue.values, factor);
  const auto l_ds = metrics::downsample(loss.values, factor);
  const auto x_ds = metrics::downsample(rtt.values, factor);
  for (std::size_t k = 0; k < t_ds.size(); ++k) {
    model_table.add_numeric_row(format_double(t_ds[k], 2),
                                {r_ds[k], q_ds[k], l_ds[k], x_ds[k]}, 1);
  }
  std::printf("Model:\n%s\n", model_table.to_string().c_str());

  // Experiment side.
  auto packet = scenario::build_packet(spec);
  packet.net->run(duration_s);
  const auto& ptr = packet.net->trace();
  const std::size_t pfactor =
      std::max<std::size_t>(1, ptr.rows.size() / print_rows);
  Table exp_table({"t[s]", "rate[%C]", "queue[%B]", "loss[%]", "srtt[+%]"});
  const double pbuffer = spec.buffer_bdp * packet.bottleneck_bdp_pkts;
  for (std::size_t k = 0; k < ptr.rows.size(); k += pfactor) {
    const auto& row = ptr.rows[k];
    const double srtt = row.flow_srtt_s[0];
    exp_table.add_numeric_row(
        format_double(row.t, 2),
        {100.0 * row.flow_rate_pps[0] / cap,
         100.0 * row.queue_pkts / pbuffer, 100.0 * row.loss_fraction,
         srtt > 0.0 ? 100.0 * (srtt / prop - 1.0) : 0.0},
        1);
  }
  std::printf("Experiment:\n%s\n", exp_table.to_string().c_str());

  // Aggregate comparison line.
  const auto m = metrics::evaluate_fluid(*fluid.sim, fluid.bottleneck_link);
  const auto e = packet.net->aggregate_metrics();
  std::printf(
      "aggregates: model(loss %.2f%%, occ %.1f%%, util %.1f%%) "
      "experiment(loss %.2f%%, occ %.1f%%, util %.1f%%)\n",
      m.loss_pct, m.occupancy_pct, m.utilization_pct, e.loss_pct,
      e.occupancy_pct, e.utilization_pct);
}

}  // namespace bbrmodel::bench
