// Insights 5 & 6 — the two newly identified BBRv2 failure settings.
//
// Insight 5: in drop-tail buffers beyond ~5 BDP, distorted start-up
// estimates of inflight_hi (set too high, or never set because deep buffers
// prevent loss) leave BBRv2 on the loose generic 2·BDP window → buffer
// usage grows again with buffer size. The fluid model reproduces it through
// initial conditions (the paper's §4.3.3 recipe); the packet simulator
// natively through its startup phase.
//
// Insight 6: on a high-capacity RED link, BBRv2 is unfair towards
// loss-based CCAs because their loss sensitivity scales worse with rate.
//
// Both insights build their cells as ad-hoc sweep tasks (the buffer and
// capacity ladders live in the specs) and run them through the engine's
// default backend runner — in parallel, seeded by the engine's
// (base_seed, index) contract, and cacheable wherever the spec is
// self-contained (the distorted-start variant sets a bbr_init callback and
// is therefore excluded from caching automatically).
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "common/units.h"
#include "orchestrator/execution_plan.h"

int main() {
  using namespace bbrmodel;
  using namespace bbrmodel::bench;

  // ---- Insight 5 -----------------------------------------------------------
  std::printf("%s", banner("Insight 5 — BBRv2 bufferbloat in deep drop-tail "
                           "buffers").c_str());
  const std::vector<double> buffers = {1.0, 2.0, 4.0, 5.0, 6.0, 7.0};
  std::vector<sweep::SweepTask> tasks;
  for (double buffer : buffers) {
    scenario::ExperimentSpec spec = validation_spec();
    spec.mix = scenario::homogeneous(scenario::CcaKind::kBbrv2, 10);
    spec.buffer_bdp = buffer;

    // Clean fluid model, distorted fluid model, packet experiment.
    tasks.push_back(sweep::make_task(tasks.size(), sweep::Backend::kFluid,
                                     spec, /*base_seed=*/42));
    auto distorted = spec;
    const double overestimate = 2.5 * spec.capacity_pps / 10.0;
    distorted.bbr_init = [overestimate](std::size_t) {
      core::BbrInit init;
      // §4.3.3: choose w_hi(0) (and the start-up bandwidth estimate behind
      // it) dependent on the buffer — deep buffers never see the loss that
      // would discipline the bounds.
      init.btl_estimate_pps = overestimate;  // startup overestimate
      init.inflight_hi_pkts = 1e9;           // bound never set
      return init;
    };
    tasks.push_back(sweep::make_task(tasks.size(), sweep::Backend::kFluid,
                                     distorted, 42));
    tasks.push_back(
        sweep::make_task(tasks.size(), sweep::Backend::kPacket, spec, 42));
  }
  const auto result5 = orchestrator::execute(
      orchestrator::ExecutionPlan::from_tasks(std::move(tasks)),
      bench_sweep_options(42));

  Table t5({"buffer[BDP]", "model occ[%] clean", "model occ[%] distorted",
            "model q[BDP] distorted", "experiment occ[%]",
            "experiment q[BDP]"});
  for (std::size_t b = 0; b < buffers.size(); ++b) {
    const auto& clean = result5.row(b * 3).metrics;
    const auto& dist = result5.row(b * 3 + 1).metrics;
    const auto& exp = result5.row(b * 3 + 2).metrics;
    t5.add_numeric_row(format_double(buffers[b], 0),
                       {clean.occupancy_pct, dist.occupancy_pct,
                        dist.occupancy_pct / 100.0 * buffers[b],
                        exp.occupancy_pct,
                        exp.occupancy_pct / 100.0 * buffers[b]},
                       2);
  }
  std::printf("%s\n", t5.to_string().c_str());
  shape("With distorted start-up bounds the BBRv2 model's absolute queue "
        "grows with buffer size instead of staying constant; the packet "
        "experiment shows the same through its native startup (Insight 5).");

  // ---- Insight 6 -----------------------------------------------------------
  std::printf("%s", banner("Insight 6 — BBRv2 vs loss-based CCAs on "
                           "high-capacity RED links").c_str());
  const std::vector<double> capacities_mbps = {100.0, 400.0, 1000.0};
  const std::vector<scenario::CcaKind> others = {scenario::CcaKind::kReno,
                                                 scenario::CcaKind::kCubic};
  std::vector<sweep::SweepTask> tasks6;
  for (double mbps : capacities_mbps) {
    for (auto other : others) {
      scenario::ExperimentSpec spec = validation_spec();
      spec.capacity_pps = mbps_to_pps(mbps);
      spec.buffer_bdp = 2.0;
      spec.discipline = net::Discipline::kRed;
      spec.mix = scenario::half_half(scenario::CcaKind::kBbrv2, other, 10);
      tasks6.push_back(sweep::make_task(tasks6.size(), sweep::Backend::kFluid,
                                        spec, /*base_seed=*/42));
      tasks6.push_back(
          sweep::make_task(tasks6.size(), sweep::Backend::kPacket, spec, 42));
    }
  }
  const auto result6 = orchestrator::execute(
      orchestrator::ExecutionPlan::from_tasks(std::move(tasks6)),
      bench_sweep_options(42));

  auto share_of_first_half = [](const metrics::AggregateMetrics& m) {
    double first = 0.0, total = 0.0;
    for (std::size_t i = 0; i < m.mean_rate_pps.size(); ++i) {
      total += m.mean_rate_pps[i];
      if (i < m.mean_rate_pps.size() / 2) first += m.mean_rate_pps[i];
    }
    return total > 0.0 ? first / total : 0.0;
  };

  Table t6({"capacity[Mbps]", "mix", "model jain", "model BBRv2 share",
            "exp jain", "exp BBRv2 share"});
  std::size_t row = 0;
  for (double mbps : capacities_mbps) {
    for (auto other : others) {
      (void)other;
      const auto& model = result6.row(row++).metrics;
      const auto& exp = result6.row(row).metrics;
      t6.add_row({format_double(mbps, 0), result6.row(row).task.mix_label,
                  format_double(model.jain, 3),
                  format_double(share_of_first_half(model), 3),
                  format_double(exp.jain, 3),
                  format_double(share_of_first_half(exp), 3)});
      ++row;
    }
  }
  std::printf("%s\n", t6.to_string().c_str());
  shape("As capacity grows under RED, BBRv2's bandwidth share against "
        "Reno/CUBIC rises above one half and fairness drops — loss-based "
        "CCAs' loss sensitivity scales worse with rate (Insight 6).");
  return 0;
}
