// Insights 5 & 6 — the two newly identified BBRv2 failure settings.
//
// Insight 5: in drop-tail buffers beyond ~5 BDP, distorted start-up
// estimates of inflight_hi (set too high, or never set because deep buffers
// prevent loss) leave BBRv2 on the loose generic 2·BDP window → buffer
// usage grows again with buffer size. The fluid model reproduces it through
// initial conditions (the paper's §4.3.3 recipe); the packet simulator
// natively through its startup phase.
//
// Insight 6: on a high-capacity RED link, BBRv2 is unfair towards
// loss-based CCAs because their loss sensitivity scales worse with rate.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "common/units.h"

int main() {
  using namespace bbrmodel;
  using namespace bbrmodel::bench;

  // ---- Insight 5 -----------------------------------------------------------
  std::printf("%s", banner("Insight 5 — BBRv2 bufferbloat in deep drop-tail "
                           "buffers").c_str());
  Table t5({"buffer[BDP]", "model occ[%] clean", "model occ[%] distorted",
            "model q[BDP] distorted", "experiment occ[%]",
            "experiment q[BDP]"});
  for (double buffer : {1.0, 2.0, 4.0, 5.0, 6.0, 7.0}) {
    scenario::ExperimentSpec spec = validation_spec();
    spec.mix = scenario::homogeneous(scenario::CcaKind::kBbrv2, 10);
    spec.buffer_bdp = buffer;

    const auto clean = scenario::run_fluid(spec);

    // §4.3.3: choose w_hi(0) (and the start-up bandwidth estimate behind
    // it) dependent on the buffer — deep buffers never see the loss that
    // would discipline the bounds.
    auto distorted = spec;
    distorted.bbr_init = [&spec](std::size_t) {
      core::BbrInit init;
      init.btl_estimate_pps =
          2.5 * spec.capacity_pps / 10.0;  // startup overestimate
      init.inflight_hi_pkts = 1e9;          // bound never set
      return init;
    };
    const auto dist = scenario::run_fluid(distorted);
    const auto exp = scenario::run_packet(spec);

    t5.add_numeric_row(format_double(buffer, 0),
                       {clean.occupancy_pct, dist.occupancy_pct,
                        dist.occupancy_pct / 100.0 * buffer,
                        exp.occupancy_pct,
                        exp.occupancy_pct / 100.0 * buffer},
                       2);
  }
  std::printf("%s\n", t5.to_string().c_str());
  shape("With distorted start-up bounds the BBRv2 model's absolute queue "
        "grows with buffer size instead of staying constant; the packet "
        "experiment shows the same through its native startup (Insight 5).");

  // ---- Insight 6 -----------------------------------------------------------
  std::printf("%s", banner("Insight 6 — BBRv2 vs loss-based CCAs on "
                           "high-capacity RED links").c_str());
  Table t6({"capacity[Mbps]", "mix", "model jain", "model BBRv2 share",
            "exp jain", "exp BBRv2 share"});
  for (double mbps : {100.0, 400.0, 1000.0}) {
    for (auto other : {scenario::CcaKind::kReno, scenario::CcaKind::kCubic}) {
      scenario::ExperimentSpec spec = validation_spec();
      spec.capacity_pps = mbps_to_pps(mbps);
      spec.buffer_bdp = 2.0;
      spec.discipline = net::Discipline::kRed;
      spec.mix = scenario::half_half(scenario::CcaKind::kBbrv2, other, 10);

      auto share_of_first_half = [](const metrics::AggregateMetrics& m) {
        double first = 0.0, total = 0.0;
        for (std::size_t i = 0; i < m.mean_rate_pps.size(); ++i) {
          total += m.mean_rate_pps[i];
          if (i < m.mean_rate_pps.size() / 2) first += m.mean_rate_pps[i];
        }
        return total > 0.0 ? first / total : 0.0;
      };

      const auto model = scenario::run_fluid(spec);
      const auto exp = scenario::run_packet(spec);
      t6.add_row({format_double(mbps, 0), spec.mix.label,
                  format_double(model.jain, 3),
                  format_double(share_of_first_half(model), 3),
                  format_double(exp.jain, 3),
                  format_double(share_of_first_half(exp), 3)});
    }
  }
  std::printf("%s\n", t6.to_string().c_str());
  shape("As capacity grows under RED, BBRv2's bandwidth share against "
        "Reno/CUBIC rises above one half and fairness drops — loss-based "
        "CCAs' loss sensitivity scales worse with rate (Insight 6).");
  return 0;
}
