// Theorems 2 & 5 — asymptotic stability by the indirect Lyapunov method:
// Jacobian spectra of the reduced systems at their equilibria.
//
// Paper shape: all eigenvalues have negative real parts. BBRv1 aggregate:
// {−1, −1/(2d)} (Eq. 49); BBRv1 shallow: {−1, −1/(4N+1)×(N−1)}; BBRv2:
// {−1, −(4N+1)/(5Nd), −1/(4N+1)×(N−1)} (Eq. 71).
//
// Each theorem's (N, d) table is one sweep: N rides the grid's flow-count
// axis, d its RTT axis, and every Jacobian analysis is a task under a
// named custom runner (a pure function of the spec, hence cacheable),
// returning {spectral abscissa, closed-form prediction, stable} in
// metrics.aux.
#include <cstdio>

#include "analysis/jacobian.h"
#include "analysis/stability.h"
#include "bench_util.h"
#include "common/table.h"
#include "common/units.h"

namespace {

using namespace bbrmodel;

/// Grid for one theorem table: N values × d values, reduced backend.
sweep::ParameterGrid theory_grid(scenario::CcaKind kind,
                                 std::vector<std::size_t> flow_counts,
                                 std::vector<double> delays) {
  sweep::ParameterGrid grid;
  grid.backends = {sweep::Backend::kReduced};
  grid.disciplines = {net::Discipline::kDropTail};
  grid.buffers_bdp = {1.0};
  grid.flow_counts = std::move(flow_counts);
  grid.mixes = {sweep::homogeneous_mix(kind)};
  grid.rtt_ranges.clear();
  for (double d : delays) grid.rtt_ranges.push_back({d, d});
  return grid;
}

}  // namespace

int main() {
  using namespace bbrmodel::bench;
  using namespace bbrmodel::analysis;

  const double cap = mbps_to_pps(100.0);
  scenario::ExperimentSpec base;
  base.capacity_pps = cap;

  const auto scenario_of = [](const sweep::SweepTask& task) {
    return BottleneckScenario::uniform(task.spec.mix.flows.size(),
                                       task.spec.capacity_pps,
                                       task.spec.min_rtt_s);
  };

  // ---- Theorem 2: the BBRv1 aggregate (y, q) system over d ----------------
  {
    sweep::SweepOptions options = bench_sweep_options(42);
    options.runner = {"theory-thm2", [&](const sweep::SweepTask& task) {
                        const auto s = scenario_of(task);
                        const auto report =
                            analyze(bbrv1_aggregate_jacobian(s));
                        const double d = task.spec.min_rtt_s;
                        const double predicted =
                            d <= 0.5 ? -1.0 : -1.0 / (2.0 * d);
                        metrics::AggregateMetrics m;
                        m.aux = {report.spectral_abscissa, predicted,
                                 report.asymptotically_stable ? 1.0 : 0.0};
                        return m;
                      }};
    const auto result = sweep::run_sweep(
        theory_grid(scenario::CcaKind::kBbrv1, {10},
                    {0.01, 0.035, 0.2, 0.5, 1.0, 2.0}),
        base, options);

    std::printf("%s",
                banner("Theorem 2 — BBRv1 aggregate (y, q) system").c_str());
    Table t2({"d[s]", "lambda+ (QR)", "lambda+ (Eq.49)", "stable"});
    for (const auto& row : result.rows()) {
      const auto& aux = row.metrics.aux;
      t2.add_row({format_double(row.task.spec.min_rtt_s, 3),
                  format_double(aux[0], 4), format_double(aux[1], 4),
                  aux[2] > 0.5 ? "yes" : "NO"});
    }
    std::printf("%s\n", t2.to_string().c_str());
  }

  // ---- Theorem 3: the BBRv1 shallow-buffer system over N ------------------
  {
    sweep::SweepOptions options = bench_sweep_options(42);
    options.runner = {"theory-thm3", [&](const sweep::SweepTask& task) {
                        const auto s = scenario_of(task);
                        const auto report = analyze(bbrv1_shallow_jacobian(s));
                        const double n =
                            static_cast<double>(task.spec.mix.flows.size());
                        metrics::AggregateMetrics m;
                        m.aux = {report.spectral_abscissa,
                                 -1.0 / (4.0 * n + 1.0),
                                 report.asymptotically_stable ? 1.0 : 0.0};
                        return m;
                      }};
    const auto result = sweep::run_sweep(
        theory_grid(scenario::CcaKind::kBbrv1, {2, 5, 10, 20, 50}, {0.035}),
        base, options);

    std::printf("%s",
                banner("Theorem 3 — BBRv1 shallow-buffer system").c_str());
    Table t3({"N", "lambda+ (QR)", "lambda+ = -1/(4N+1)", "stable"});
    for (const auto& row : result.rows()) {
      const auto& aux = row.metrics.aux;
      t3.add_row({std::to_string(row.task.spec.mix.flows.size()),
                  format_double(aux[0], 5), format_double(aux[1], 5),
                  aux[2] > 0.5 ? "yes" : "NO"});
    }
    std::printf("%s\n", t3.to_string().c_str());
  }

  // ---- Theorem 5: the BBRv2 (x_1..x_N, q) system over N × d ---------------
  {
    sweep::SweepOptions options = bench_sweep_options(42);
    options.runner = {"theory-thm5", [&](const sweep::SweepTask& task) {
                        const auto s = scenario_of(task);
                        const auto report = analyze(bbrv2_jacobian(s));
                        const auto predicted = bbrv2_eigenvalues(s);
                        metrics::AggregateMetrics m;
                        m.aux = {report.spectral_abscissa,
                                 predicted.front().real(),
                                 report.asymptotically_stable ? 1.0 : 0.0};
                        return m;
                      }};
    const auto result = sweep::run_sweep(
        theory_grid(scenario::CcaKind::kBbrv2, {2, 5, 10, 20},
                    {0.01, 0.035, 0.2}),
        base, options);

    std::printf("%s",
                banner("Theorem 5 — BBRv2 (x_1..x_N, q) system").c_str());
    Table t5({"N", "d[s]", "lambda+ (QR)", "lambda+ (Eq.71 family)",
              "stable"});
    for (const auto& row : result.rows()) {
      const auto& aux = row.metrics.aux;
      t5.add_row({std::to_string(row.task.spec.mix.flows.size()),
                  format_double(row.task.spec.min_rtt_s, 3),
                  format_double(aux[0], 5), format_double(aux[1], 5),
                  aux[2] > 0.5 ? "yes" : "NO"});
    }
    std::printf("%s\n", t5.to_string().c_str());
  }

  shape("Every Jacobian spectrum is strictly in the left half-plane and "
        "matches the paper's closed forms — BBRv1 and BBRv2 equilibria are "
        "asymptotically stable (Theorems 2 & 5).");
  return 0;
}
