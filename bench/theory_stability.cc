// Theorems 2 & 5 — asymptotic stability by the indirect Lyapunov method:
// Jacobian spectra of the reduced systems at their equilibria.
//
// Paper shape: all eigenvalues have negative real parts. BBRv1 aggregate:
// {−1, −1/(2d)} (Eq. 49); BBRv1 shallow: {−1, −1/(4N+1)×(N−1)}; BBRv2:
// {−1, −(4N+1)/(5Nd), −1/(4N+1)×(N−1)} (Eq. 71).
#include <cstdio>

#include "analysis/jacobian.h"
#include "analysis/stability.h"
#include "bench_util.h"
#include "common/table.h"
#include "common/units.h"

int main() {
  using namespace bbrmodel;
  using namespace bbrmodel::bench;
  using namespace bbrmodel::analysis;

  const double cap = mbps_to_pps(100.0);

  std::printf("%s", banner("Theorem 2 — BBRv1 aggregate (y, q) system").c_str());
  Table t2({"d[s]", "lambda+ (QR)", "lambda+ (Eq.49)", "stable"});
  for (double d : {0.01, 0.035, 0.2, 0.5, 1.0, 2.0}) {
    const auto s = BottleneckScenario::uniform(10, cap, d);
    const auto report = analyze(bbrv1_aggregate_jacobian(s));
    const double predicted = d <= 0.5 ? -1.0 : -1.0 / (2.0 * d);
    t2.add_row({format_double(d, 3),
                format_double(report.spectral_abscissa, 4),
                format_double(predicted, 4),
                report.asymptotically_stable ? "yes" : "NO"});
  }
  std::printf("%s\n", t2.to_string().c_str());

  std::printf("%s", banner("Theorem 3 — BBRv1 shallow-buffer system").c_str());
  Table t3({"N", "lambda+ (QR)", "lambda+ = -1/(4N+1)", "stable"});
  for (std::size_t n : {2u, 5u, 10u, 20u, 50u}) {
    const auto s = BottleneckScenario::uniform(n, cap, 0.035);
    const auto report = analyze(bbrv1_shallow_jacobian(s));
    t3.add_row({std::to_string(n),
                format_double(report.spectral_abscissa, 5),
                format_double(-1.0 / (4.0 * double(n) + 1.0), 5),
                report.asymptotically_stable ? "yes" : "NO"});
  }
  std::printf("%s\n", t3.to_string().c_str());

  std::printf("%s", banner("Theorem 5 — BBRv2 (x_1..x_N, q) system").c_str());
  Table t5({"N", "d[s]", "lambda+ (QR)", "lambda+ (Eq.71 family)", "stable"});
  for (std::size_t n : {2u, 5u, 10u, 20u}) {
    for (double d : {0.01, 0.035, 0.2}) {
      const auto s = BottleneckScenario::uniform(n, cap, d);
      const auto report = analyze(bbrv2_jacobian(s));
      const auto predicted = bbrv2_eigenvalues(s);
      t5.add_row({std::to_string(n), format_double(d, 3),
                  format_double(report.spectral_abscissa, 5),
                  format_double(predicted.front().real(), 5),
                  report.asymptotically_stable ? "yes" : "NO"});
    }
  }
  std::printf("%s\n", t5.to_string().c_str());

  shape("Every Jacobian spectrum is strictly in the left half-plane and "
        "matches the paper's closed forms — BBRv1 and BBRv2 equilibria are "
        "asymptotically stable (Theorems 2 & 5).");
  return 0;
}
