// Theorems 2 & 5 — asymptotic stability by the indirect Lyapunov method:
// Jacobian spectra of the reduced systems at their equilibria.
//
// Paper shape: all eigenvalues have negative real parts. BBRv1 aggregate:
// {−1, −1/(2d)} (Eq. 49); BBRv1 shallow: {−1, −1/(4N+1)×(N−1)}; BBRv2:
// {−1, −(4N+1)/(5Nd), −1/(4N+1)×(N−1)} (Eq. 71).
//
// Each theorem's (N, d) table is one sweep: N rides the grid's flow-count
// axis, d its RTT axis, and every Jacobian analysis is a task under a
// named custom runner (a pure function of the spec, hence cacheable),
// returning {spectral abscissa, closed-form prediction, stable} in
// metrics.aux.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>
#include <vector>

#include "adaptive/refiner.h"
#include "analysis/jacobian.h"
#include "analysis/stability.h"
#include "bench_util.h"
#include "common/table.h"
#include "common/units.h"
#include "obs/log.h"
#include "orchestrator/execution_plan.h"

namespace {

using namespace bbrmodel;

/// Grid for one theorem table: N values × d values, reduced backend.
sweep::ParameterGrid theory_grid(scenario::CcaKind kind,
                                 std::vector<std::size_t> flow_counts,
                                 std::vector<double> delays) {
  sweep::ParameterGrid grid;
  grid.backends = {sweep::Backend::kReduced};
  grid.disciplines = {net::Discipline::kDropTail};
  grid.buffers_bdp = {1.0};
  grid.flow_counts = std::move(flow_counts);
  grid.mixes = {sweep::homogeneous_mix(kind)};
  grid.rtt_ranges.clear();
  for (double d : delays) grid.rtt_ranges.push_back({d, d});
  return grid;
}

/// Theorem 2 runner, shared by the printed table and the adaptive
/// boundary study: aux = {spectral abscissa (QR), Eq. 49 closed form,
/// stable}. A pure function of the spec, hence named and cacheable.
sweep::Runner thm2_runner() {
  return sweep::make_runner(
      "theory-thm2", [](const sweep::SweepTask& task) {
            const auto s = bbrmodel::analysis::BottleneckScenario::uniform(
                task.spec.mix.flows.size(), task.spec.capacity_pps,
                task.spec.min_rtt_s);
            const auto report = bbrmodel::analysis::analyze(
                bbrmodel::analysis::bbrv1_aggregate_jacobian(s));
            const double d = task.spec.min_rtt_s;
            const double predicted = d <= 0.5 ? -1.0 : -1.0 / (2.0 * d);
            metrics::AggregateMetrics m;
            m.aux = {report.spectral_abscissa, predicted,
                     report.asymptotically_stable ? 1.0 : 0.0};
            return m;
          });
}

/// (d, λ+) pairs of a Theorem-2 sweep, sorted by d (adaptive results come
/// back in canonical-spec order, not axis order).
std::vector<std::pair<double, double>> abscissa_curve(
    const sweep::SweepResult& result) {
  std::vector<std::pair<double, double>> curve;
  for (const auto& row : result.rows()) {
    curve.emplace_back(row.task.spec.min_rtt_s, row.metrics.aux.at(0));
  }
  std::sort(curve.begin(), curve.end());
  return curve;
}

/// The d where λ+ crosses `level` (linear interpolation between the
/// bracketing evaluated points); NaN if the curve never crosses.
double boundary_crossing(const std::vector<std::pair<double, double>>& curve,
                         double level) {
  for (std::size_t i = 1; i < curve.size(); ++i) {
    const auto [d0, l0] = curve[i - 1];
    const auto [d1, l1] = curve[i];
    if (l0 <= level && l1 > level) {
      return l1 == l0 ? d0 : d0 + (level - l0) / (l1 - l0) * (d1 - d0);
    }
  }
  return std::nan("");
}

}  // namespace

int main() {
  using namespace bbrmodel::bench;
  using namespace bbrmodel::analysis;
  bbrmodel::obs::set_log_program("theory_stability");

  const double cap = mbps_to_pps(100.0);
  scenario::ExperimentSpec base;
  base.capacity_pps = cap;

  const auto scenario_of = [](const sweep::SweepTask& task) {
    return BottleneckScenario::uniform(task.spec.mix.flows.size(),
                                       task.spec.capacity_pps,
                                       task.spec.min_rtt_s);
  };

  // ---- Theorem 2: the BBRv1 aggregate (y, q) system over d ----------------
  {
    sweep::SweepOptions options = bench_sweep_options(42);
    options.runner = thm2_runner();
    const auto result = sweep::run_sweep(
        theory_grid(scenario::CcaKind::kBbrv1, {10},
                    {0.01, 0.035, 0.2, 0.5, 1.0, 2.0}),
        base, options);

    std::printf("%s",
                banner("Theorem 2 — BBRv1 aggregate (y, q) system").c_str());
    Table t2({"d[s]", "lambda+ (QR)", "lambda+ (Eq.49)", "stable"});
    for (const auto& row : result.rows()) {
      const auto& aux = row.metrics.aux;
      t2.add_row({format_double(row.task.spec.min_rtt_s, 3),
                  format_double(aux[0], 4), format_double(aux[1], 4),
                  aux[2] > 0.5 ? "yes" : "NO"});
    }
    std::printf("%s\n", t2.to_string().c_str());
  }

  // ---- Theorem 3: the BBRv1 shallow-buffer system over N ------------------
  {
    sweep::SweepOptions options = bench_sweep_options(42);
    options.runner = sweep::make_runner(
        "theory-thm3", [&](const sweep::SweepTask& task) {
          const auto s = scenario_of(task);
          const auto report = analyze(bbrv1_shallow_jacobian(s));
          const double n = static_cast<double>(task.spec.mix.flows.size());
          metrics::AggregateMetrics m;
          m.aux = {report.spectral_abscissa, -1.0 / (4.0 * n + 1.0),
                   report.asymptotically_stable ? 1.0 : 0.0};
          return m;
        });
    const auto result = sweep::run_sweep(
        theory_grid(scenario::CcaKind::kBbrv1, {2, 5, 10, 20, 50}, {0.035}),
        base, options);

    std::printf("%s",
                banner("Theorem 3 — BBRv1 shallow-buffer system").c_str());
    Table t3({"N", "lambda+ (QR)", "lambda+ = -1/(4N+1)", "stable"});
    for (const auto& row : result.rows()) {
      const auto& aux = row.metrics.aux;
      t3.add_row({std::to_string(row.task.spec.mix.flows.size()),
                  format_double(aux[0], 5), format_double(aux[1], 5),
                  aux[2] > 0.5 ? "yes" : "NO"});
    }
    std::printf("%s\n", t3.to_string().c_str());
  }

  // ---- Theorem 5: the BBRv2 (x_1..x_N, q) system over N × d ---------------
  {
    sweep::SweepOptions options = bench_sweep_options(42);
    options.runner = sweep::make_runner(
        "theory-thm5", [&](const sweep::SweepTask& task) {
          const auto s = scenario_of(task);
          const auto report = analyze(bbrv2_jacobian(s));
          const auto predicted = bbrv2_eigenvalues(s);
          metrics::AggregateMetrics m;
          m.aux = {report.spectral_abscissa, predicted.front().real(),
                   report.asymptotically_stable ? 1.0 : 0.0};
          return m;
        });
    const auto result = sweep::run_sweep(
        theory_grid(scenario::CcaKind::kBbrv2, {2, 5, 10, 20},
                    {0.01, 0.035, 0.2}),
        base, options);

    std::printf("%s",
                banner("Theorem 5 — BBRv2 (x_1..x_N, q) system").c_str());
    Table t5({"N", "d[s]", "lambda+ (QR)", "lambda+ (Eq.71 family)",
              "stable"});
    for (const auto& row : result.rows()) {
      const auto& aux = row.metrics.aux;
      t5.add_row({std::to_string(row.task.spec.mix.flows.size()),
                  format_double(row.task.spec.min_rtt_s, 3),
                  format_double(aux[0], 5), format_double(aux[1], 5),
                  aux[2] > 0.5 ? "yes" : "NO"});
    }
    std::printf("%s\n", t5.to_string().c_str());
  }

  // ---- Adaptive refinement of the Theorem 2 stability boundary ------------
  // λ+(d) is flat at −1 up to d = 0.5 s and bends to −1/(2d) beyond: the
  // interesting structure is one kink. A dense sweep pays for the whole
  // axis; the adaptive refiner starts from five coarse cells and
  // subdivides only where λ+ moves.
  {
    const double kDenseStep = 0.025;
    std::vector<double> dense_d;
    for (double d = 0.1; d <= 1.7 + 1e-9; d += kDenseStep) {
      dense_d.push_back(d);
    }
    sweep::SweepOptions options = bench_sweep_options(42);
    options.runner = thm2_runner();
    const auto dense = sweep::run_sweep(
        theory_grid(scenario::CcaKind::kBbrv1, {10}, dense_d), base,
        options);

    adaptive::RefinementPolicy policy;
    policy.metrics = {adaptive::RefineMetric::kAux0};
    policy.aux_scale = 1.0;   // λ+ is O(1)
    policy.threshold = 0.05;  // refine where λ+ moves by > 0.05
    policy.max_depth = 4;     // 0.4 s coarse step → 0.025 s at the kink
    adaptive::GridRefiner refiner(
        theory_grid(scenario::CcaKind::kBbrv1, {10},
                    {0.1, 0.5, 0.9, 1.3, 1.7}),
        base, policy);
    refiner.set_triage(thm2_runner());
    const auto plan = refiner.plan(bench_sweep_options(42));
    sweep::SweepOptions fine = bench_sweep_options(42);
    fine.runner = thm2_runner();
    const auto refined = orchestrator::execute(
        orchestrator::ExecutionPlan::from_refinement(plan, 42), fine);

    // Boundary estimate: where λ+ crosses −0.95 (just past the kink).
    const double dense_boundary =
        boundary_crossing(abscissa_curve(dense), -0.95);
    const double adaptive_boundary =
        boundary_crossing(abscissa_curve(refined), -0.95);
    const double cell_ratio = static_cast<double>(refined.size()) /
                              static_cast<double>(dense.size());

    std::printf("%s", banner("Adaptive refinement — Theorem 2 boundary "
                             "(lambda+ crossing -0.95)").c_str());
    Table t({"sweep", "cells", "boundary d[s]", "cells vs dense"});
    t.add_row({"dense", std::to_string(dense.size()),
               format_double(dense_boundary, 4), format_double(1.0, 2)});
    t.add_row({"adaptive", std::to_string(refined.size()),
               format_double(adaptive_boundary, 4),
               format_double(cell_ratio, 2)});
    std::printf("%s\n", t.to_string().c_str());

    const bool within_tolerance =
        std::abs(adaptive_boundary - dense_boundary) <= kDenseStep;
    if (!within_tolerance || cell_ratio > 0.40) {
      obs::log(obs::LogLevel::kError,
               "FAIL: adaptive boundary %.4f vs dense %.4f (tolerance "
               "%.3f) at %.0f%% of the dense cells",
               adaptive_boundary, dense_boundary, kDenseStep,
               100.0 * cell_ratio);
      return 1;
    }
    std::printf("adaptive sweep reproduced the boundary within %.3f s "
                "using %.0f%% of the dense cells\n\n",
                kDenseStep, 100.0 * cell_ratio);
  }

  shape("Every Jacobian spectrum is strictly in the left half-plane and "
        "matches the paper's closed forms — BBRv1 and BBRv2 equilibria are "
        "asymptotically stable (Theorems 2 & 5). The adaptive refiner "
        "recovers the Theorem 2 boundary from a fraction of the dense "
        "cells.");
  return 0;
}
