// Fig. 5 — BBRv2 trace validation: one flow, 30 s, drop-tail and RED.
//
// Paper shape: rate ≈100 % with barely visible loss; ProbeRTT dips appear
// periodically (every ~10 s in the model); buffer usage is far below
// BBRv1's.
#include "bench_util.h"

int main() {
  using namespace bbrmodel;
  using namespace bbrmodel::bench;
  const double duration = fast_mode() ? 12.0 : 30.0;
  run_trace_figure("Fig. 5 — BBRv2 trace validation",
                   scenario::CcaKind::kBbrv2, net::Discipline::kDropTail,
                   duration, 20);
  run_trace_figure("Fig. 5 — BBRv2 trace validation",
                   scenario::CcaKind::kBbrv2, net::Discipline::kRed, duration,
                   20);
  shape("BBRv2 holds ~100% rate with near-zero loss and low queue; periodic "
        "ProbeRTT dips are visible (Fig. 5).");
  return 0;
}
