// Fig. 8 — Queuing validation: mean buffer occupancy [%] vs buffer size.
//
// Paper shape: Reno/CUBIC bufferbloat (high occupancy); BBRv1 even more
// intense, with relative usage only moderately decreasing in large buffers;
// homogeneous BBRv2 keeps near-constant absolute usage (decreasing
// relative); RED keeps occupancy low everywhere.
#include "bench_util.h"

int main() {
  using namespace bbrmodel;
  using namespace bbrmodel::bench;
  run_aggregate_figure(
      "Fig. 8 — Buffer occupancy [%]",
      [](const metrics::AggregateMetrics& m) { return m.occupancy_pct; }, 1,
      validation_spec());
  shape("Drop-tail: BBRv1 and loss-based mixes keep buffers heavily used; "
        "homogeneous BBRv2 keeps occupancy low. RED: occupancy small across "
        "the board (Fig. 8).");
  return 0;
}
