// Solver-performance microbenchmarks (google-benchmark).
//
// The paper's methodology rests on fluid models enabling *efficient
// simulation* (§1, §7). These benchmarks quantify that claim for this
// implementation: fluid steps/second across flow counts and solver steps,
// packet-simulator events/second, and reduced-model RK4 throughput.
#include <benchmark/benchmark.h>

#include "analysis/equilibrium.h"
#include "analysis/reduced_models.h"
#include "bench_util.h"
#include "common/units.h"
#include "ode/steppers.h"
#include "scenario/scenario.h"

namespace {

using namespace bbrmodel;

void BM_FluidSimulation(benchmark::State& state) {
  const auto flows = static_cast<std::size_t>(state.range(0));
  const double step_us = static_cast<double>(state.range(1));
  scenario::ExperimentSpec spec = bench::validation_spec();
  spec.mix = scenario::half_half(scenario::CcaKind::kBbrv1,
                                 scenario::CcaKind::kBbrv2,
                                 std::max<std::size_t>(2, flows));
  spec.fluid.step_s = step_us * 1e-6;
  spec.fluid.record_interval_s = 1.0;  // tracing off the hot path

  double sim_seconds = 0.0;
  for (auto _ : state) {
    auto setup = scenario::build_fluid(spec);
    setup.sim->run(0.25);
    benchmark::DoNotOptimize(setup.sim->queue_pkts(setup.bottleneck_link));
    sim_seconds += 0.25;
  }
  const double steps =
      sim_seconds / spec.fluid.step_s * static_cast<double>(flows);
  state.counters["agent_steps/s"] =
      benchmark::Counter(steps, benchmark::Counter::kIsRate);
  state.counters["sim_time/wall"] = benchmark::Counter(
      sim_seconds, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FluidSimulation)
    ->Args({2, 50})
    ->Args({10, 50})
    ->Args({50, 50})
    ->Args({10, 10})
    ->Unit(benchmark::kMillisecond);

void BM_PacketSimulation(benchmark::State& state) {
  const auto flows = static_cast<std::size_t>(state.range(0));
  scenario::ExperimentSpec spec = bench::validation_spec();
  spec.mix = scenario::homogeneous(scenario::CcaKind::kBbrv1, flows);
  spec.buffer_bdp = 1.0;

  std::uint64_t events = 0;
  for (auto _ : state) {
    auto setup = scenario::build_packet(spec);
    setup.net->run(0.5);
    events += setup.net->events().executed();
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PacketSimulation)->Arg(2)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_ReducedModelRk4(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto s = analysis::BottleneckScenario::uniform(
      n, mbps_to_pps(100.0), 0.035);
  const auto rhs = analysis::bbrv2_reduced_rhs(s);
  auto x = analysis::bbrv2_equilibrium_state(s);
  for (double& v : x) v *= 1.1;

  std::uint64_t steps = 0;
  for (auto _ : state) {
    for (int k = 0; k < 1000; ++k) ode::rk4_step(rhs, 0.0, 1e-3, x);
    benchmark::DoNotOptimize(x.data());
    steps += 1000;
  }
  state.counters["rk4_steps/s"] = benchmark::Counter(
      static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ReducedModelRk4)->Arg(2)->Arg(10)->Arg(50);

}  // namespace

BENCHMARK_MAIN();
