// Shared helpers for the figure-reproduction benches.
//
// Every bench regenerates one paper figure/table: it runs the scenario(s),
// prints the same series the figure reports (Model and Experiment columns,
// normalized like the paper), and ends with a SHAPE line summarizing the
// qualitative claim the figure supports. EXPERIMENTS.md records these
// outputs against the paper.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "metrics/aggregate.h"
#include "scenario/scenario.h"
#include "sweep/cell_cache.h"
#include "sweep/sweep.h"

namespace bbrmodel::bench {

/// The buffer sweep of the aggregate figures (Figs. 6–10, 13–17): 1–7 BDP.
std::vector<double> buffer_sweep();

/// True if BBRM_BENCH_FAST is set: halves sweep resolution for quick runs.
bool fast_mode();

/// Worker threads for the aggregate sweeps: $BBRM_SWEEP_THREADS, or 0
/// (hardware concurrency) when unset.
std::size_t sweep_threads();

/// Process-wide cell cache for bench sweeps, rooted at $BBRM_SWEEP_CACHE;
/// nullptr when the variable is unset. Lets repeated figure-bench runs
/// (and figures sharing cells) skip finished simulations.
sweep::CellCache* sweep_cache();

/// SweepOptions preconfigured for benches: sweep_threads(), sweep_cache(),
/// and the given base seed.
sweep::SweepOptions bench_sweep_options(std::uint64_t base_seed);

/// The grid behind every aggregate figure: both backends × both
/// disciplines × buffer_sweep() × the seven paper mixes at N = 10 flows,
/// with the RTT spread taken from `base`.
sweep::ParameterGrid aggregate_grid(const scenario::ExperimentSpec& base);

/// Metric selector for the aggregate figures.
using MetricFn = std::function<double(const metrics::AggregateMetrics&)>;

/// Run the full aggregate validation sweep of one figure: for each queuing
/// discipline, a table with rows = buffer sizes [BDP] and columns = the
/// seven CCA mixes of the paper's legend; one table for the fluid model and
/// one for the packet experiment.
///
/// @param title        figure title, e.g. "Fig. 6 — Jain fairness".
/// @param metric       which metric column to print.
/// @param precision    table cell precision.
/// @param base         base spec (capacity, RTT range, duration).
void run_aggregate_figure(const std::string& title, const MetricFn& metric,
                          int precision,
                          const scenario::ExperimentSpec& base);

/// Base spec of the §4.3 validation (N = 10, 100 Mbps, RTT 30–40 ms, 5 s).
scenario::ExperimentSpec validation_spec();

/// Base spec of the Appendix C short-RTT validation (RTT 10–20 ms).
scenario::ExperimentSpec short_rtt_spec();

/// A metric column of run_aggregate_figures: title + selector + precision.
struct FigureMetric {
  std::string title;
  MetricFn metric;
  int precision = 3;
};

/// Run the aggregate sweep ONCE and print one figure per metric (used by
/// the Appendix-C bench, which reproduces five figures from one sweep).
void run_aggregate_figures(const std::vector<FigureMetric>& figures,
                           const scenario::ExperimentSpec& base);

/// Trace figure helper: run one CCA alone (the §4.2 set-up: 100 Mbps,
/// d_ℓ = 10 ms, d_ℓ1 = 5.6 ms, 1 BDP buffer) under a discipline with both
/// simulators and print normalized time series rows (downsampled).
void run_trace_figure(const std::string& title, scenario::CcaKind kind,
                      net::Discipline discipline, double duration_s,
                      std::size_t print_rows);

/// Print a one-line qualitative takeaway (prefixed "SHAPE:").
void shape(const std::string& line);

}  // namespace bbrmodel::bench
