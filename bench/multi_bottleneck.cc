// Multi-bottleneck extension (paper §8: "it will be interesting to evaluate
// the BBR fluid models in multiple-bottleneck scenarios") — parking-lot
// sweep over hop counts.
//
// Expected shape (classic congestion-control theory + BBR literature): the
// long flow's share shrinks with the number of traversed bottlenecks for
// AIMD CCAs (multiplied loss probability, larger RTT), while BBR's
// rate-based probing degrades much more slowly.
//
// The workload itself lives in the library now (sweep/workloads.h): the
// task's mix assigns flow 0 to the long flow and flow 1+h to the cross
// flow of hop h, so the hop count rides the flow-count axis (hops =
// flows − 1) and per-hop cross CCAs ride the mix axis. Everything here
// flows through the orchestrator's ExecutionPlan spine — the same cells
// could equally be drained by `bbrsweep --workload parking-lot` or a
// distributed worker fleet.
#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>
#include <vector>

#include "adaptive/refiner.h"
#include "bench_util.h"
#include "common/table.h"
#include "common/units.h"
#include "orchestrator/execution_plan.h"
#include "sweep/workloads.h"

namespace {

using namespace bbrmodel;

/// Hop-count grid: hops + 1 rides the flow-count axis; everything else is
/// a single value.
sweep::ParameterGrid hop_grid(const std::vector<std::size_t>& hop_counts,
                              sweep::MixSpec mix,
                              sweep::RttRange cross_rtts,
                              std::vector<sweep::Backend> backends) {
  sweep::ParameterGrid grid;
  grid.backends = std::move(backends);
  grid.disciplines = {net::Discipline::kDropTail};
  grid.buffers_bdp = {1.0};
  grid.flow_counts.clear();  // the default {10} is not a hop count
  for (const std::size_t hops : hop_counts) {
    grid.flow_counts.push_back(hops + 1);
  }
  grid.rtt_ranges = {cross_rtts};
  grid.mixes = {std::move(mix)};
  return grid;
}

std::size_t hops_of(const sweep::TaskResult& row) {
  return row.task.spec.mix.flows.size() - 1;
}

}  // namespace

int main() {
  using namespace bbrmodel::bench;

  const double cap = mbps_to_pps(100.0);
  const double duration = fast_mode() ? 4.0 : 8.0;
  const std::vector<std::size_t> hop_counts = {1, 2, 3, 5};
  const std::vector<scenario::CcaKind> kinds = {scenario::CcaKind::kReno,
                                                scenario::CcaKind::kBbrv1,
                                                scenario::CcaKind::kBbrv2};

  scenario::ExperimentSpec base;
  base.capacity_pps = cap;
  base.duration_s = duration;
  // The default spread: every flow keeps the default access delay
  // (uniform leaves flow_rtts_s empty).
  const double same =
      2.0 * (sweep::kParkingLotAccessDelay + sweep::kParkingLotHopDelay);
  const sweep::RttRange same_rtt{same, same, sweep::RttDist::kUniform};

  // ---- Figure table: long-flow share vs hop count, per CCA ---------------
  sweep::SweepOptions options = bench_sweep_options(23);
  options.runner = sweep::parking_lot_runner();

  // One grid per long-flow CCA (crosses stay Reno, the paper's baseline).
  std::map<std::pair<std::size_t, std::size_t>, std::pair<double, double>>
      shares;  // (kind, hops) → (model, experiment)
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    const auto result = orchestrator::execute(
        orchestrator::ExecutionPlan::dense(
            hop_grid(hop_counts,
                     sweep::leader_mix(kinds[k], scenario::CcaKind::kReno),
                     same_rtt,
                     {sweep::Backend::kFluid, sweep::Backend::kPacket}),
            base, /*base_seed=*/23, "parking-lot"),
        options);
    for (const auto& row : result.rows()) {
      auto& cell = shares[{k, hops_of(row)}];
      (row.task.backend == sweep::Backend::kFluid ? cell.first
                                                  : cell.second) =
          row.metrics.aux.at(0);
    }
  }

  std::printf("%s", banner("Extension — parking lot: long-flow share vs "
                           "hop count").c_str());
  Table table({"hops", "CCA", "model long/cross", "exp long/cross"});
  for (const std::size_t hops : hop_counts) {
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      const auto& cell = shares.at({k, hops});
      table.add_row({std::to_string(hops), scenario::to_string(kinds[k]),
                     format_double(cell.first, 2),
                     format_double(cell.second, 2)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  // ---- Cross-flow CCA-mix axis over wider hop counts ---------------------
  // Per-hop CCA patterns (cyclic mixes) at 3–11 hops, fluid model: how does
  // the long flow fare when the cross traffic is heterogeneous per hop?
  {
    const std::vector<std::size_t> wide_hops = {3, 7, 11};
    const std::vector<sweep::MixSpec> mixes = {
        sweep::leader_mix(scenario::CcaKind::kBbrv1,
                          scenario::CcaKind::kReno),
        sweep::cyclic_mix({scenario::CcaKind::kBbrv1,
                           scenario::CcaKind::kCubic,
                           scenario::CcaKind::kReno}),
        sweep::cyclic_mix({scenario::CcaKind::kBbrv2,
                           scenario::CcaKind::kCubic,
                           scenario::CcaKind::kReno}),
    };
    scenario::ExperimentSpec mbase = base;
    mbase.duration_s = fast_mode() ? 2.0 : 5.0;

    sweep::ParameterGrid grid =
        hop_grid(wide_hops, mixes[0], same_rtt, {sweep::Backend::kFluid});
    grid.mixes = mixes;

    const auto result = orchestrator::execute(
        orchestrator::ExecutionPlan::dense(grid, mbase, 23, "parking-lot"),
        options);

    std::printf("%s", banner("Cross-flow CCA mixes per hop — long-flow "
                             "share (fluid)").c_str());
    Table mix_table({"hops", "mix (flow0=long, rest per hop)",
                     "long/cross"});
    for (const auto& row : result.rows()) {
      mix_table.add_row({std::to_string(hops_of(row)), row.task.mix_label,
                         format_double(row.metrics.aux.at(0), 2)});
    }
    std::printf("%s\n", mix_table.to_string().c_str());
  }

  // ---- Adaptive hop sweep under Pareto cross RTTs ------------------------
  // Asymmetric cross traffic (heavy-tailed RTTs in 20–100 ms) over a
  // denser hop axis, fluid model. The refiner triages a 3-point coarse
  // axis with a short-duration run of the same runner and subdivides the
  // hop intervals where the long Reno flow's share collapses.
  {
    const sweep::RttRange pareto_rtts{0.020, 0.100, sweep::RttDist::kPareto};
    const std::vector<std::size_t> dense_hops = {1, 2, 3, 4, 5, 6};
    scenario::ExperimentSpec abase = base;
    abase.duration_s = fast_mode() ? 3.0 : 6.0;
    const auto reno_mix = sweep::homogeneous_mix(scenario::CcaKind::kReno);

    sweep::SweepOptions fine = bench_sweep_options(23);
    fine.runner = sweep::parking_lot_runner();
    const auto dense = orchestrator::execute(
        orchestrator::ExecutionPlan::dense(
            hop_grid(dense_hops, reno_mix, pareto_rtts,
                     {sweep::Backend::kFluid}),
            abase, 23, "parking-lot"),
        fine);

    adaptive::RefinementPolicy policy;
    policy.metrics = {adaptive::RefineMetric::kAux0};  // long/cross share
    policy.aux_scale = 1.0;
    policy.threshold = 0.10;  // refine where the share moves by > 0.1
    policy.max_depth = 2;
    adaptive::GridRefiner refiner(
        hop_grid({1, 3, 6}, reno_mix, pareto_rtts, {sweep::Backend::kFluid}),
        abase, policy);
    refiner.set_triage(sweep::parking_lot_runner());
    refiner.set_triage_transform([&](scenario::ExperimentSpec& spec) {
      spec.duration_s = fast_mode() ? 1.5 : 3.0;  // cheap triage runs
    });
    const auto plan = refiner.plan(bench_sweep_options(23));
    const auto refined = orchestrator::execute(
        orchestrator::ExecutionPlan::from_refinement(plan, 23,
                                                     "parking-lot"),
        fine);

    const auto curve = [](const sweep::SweepResult& result) {
      std::vector<std::pair<std::size_t, double>> points;
      for (const auto& row : result.rows()) {
        points.emplace_back(hops_of(row), row.metrics.aux.at(0));
      }
      std::sort(points.begin(), points.end());
      return points;
    };

    std::printf("%s", banner("Adaptive hop sweep — long Reno share under "
                             "Pareto cross RTTs (20-100 ms)").c_str());
    Table at({"hops", "dense long/cross", "adaptive long/cross"});
    const auto dense_curve = curve(dense);
    const auto refined_curve = curve(refined);
    for (const auto& [hops, share] : dense_curve) {
      std::string adaptive_share = "-";
      for (const auto& [ahops, ashare] : refined_curve) {
        if (ahops == hops) adaptive_share = format_double(ashare, 2);
      }
      at.add_row({std::to_string(hops), format_double(share, 2),
                  adaptive_share});
    }
    std::printf("%s\n", at.to_string().c_str());
    std::printf("adaptive evaluated %zu of %zu hop cells (%.0f%%), "
                "refined %zu round(s)\n\n",
                refined.size(), dense.size(),
                100.0 * static_cast<double>(refined.size()) /
                    static_cast<double>(dense.size()),
                plan.rounds);
  }

  shape("Experiment: the long Reno flow collapses with hop count while long "
        "BBRv1 holds a stable share (rate-based probing tolerates multiple "
        "loss points). The fluid model under-predicts BBR's multi-hop share "
        "— Eq. (17) models delivery through a single static bottleneck, a "
        "known limitation this extension exposes (paper §8). Heavy-tailed "
        "cross RTTs and per-hop CCA mixes leave the collapse shape intact; "
        "the adaptive refiner resolves the collapse region without paying "
        "for the flat tail.");
  return 0;
}
