// Multi-bottleneck extension (paper §8: "it will be interesting to evaluate
// the BBR fluid models in multiple-bottleneck scenarios") — parking-lot
// sweep over hop counts.
//
// Expected shape (classic congestion-control theory + BBR literature): the
// long flow's share shrinks with the number of traversed bottlenecks for
// AIMD CCAs (multiplied loss probability, larger RTT), while BBR's
// rate-based probing degrades much more slowly.
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"
#include "core/engine.h"
#include "net/topology.h"
#include "packetsim/multihop.h"

int main() {
  using namespace bbrmodel;
  using namespace bbrmodel::bench;

  const double cap = mbps_to_pps(100.0);
  const double duration = fast_mode() ? 4.0 : 8.0;

  std::printf("%s", banner("Extension — parking lot: long-flow share vs "
                           "hop count").c_str());
  Table table({"hops", "CCA", "model long/cross", "exp long/cross"});
  for (std::size_t hops : {1u, 2u, 3u, 5u}) {
    for (auto kind : {scenario::CcaKind::kReno, scenario::CcaKind::kBbrv1,
                      scenario::CcaKind::kBbrv2}) {
      // Fluid model.
      net::ParkingLotSpec spec;
      spec.num_hops = hops;
      spec.cross_flows_per_hop = 1;
      spec.hop_capacity_pps = cap;
      const auto lot = net::make_parking_lot(spec);
      std::vector<std::unique_ptr<core::FluidCca>> agents;
      agents.push_back(scenario::make_fluid_cca(kind));
      for (std::size_t a = 1; a < lot.topology.num_agents(); ++a) {
        agents.push_back(scenario::make_fluid_cca(scenario::CcaKind::kReno));
      }
      core::FluidSimulation sim(lot.topology, std::move(agents), {});
      sim.run(duration);
      const double m_long = sim.sent_pkts(lot.long_flow) / duration;
      RunningStats m_cross;
      for (std::size_t a = 1; a < lot.topology.num_agents(); ++a) {
        m_cross.add(sim.sent_pkts(a) / duration);
      }

      // Packet experiment.
      packetsim::MultiHopNet net(23);
      std::vector<std::size_t> chain;
      for (std::size_t h = 0; h < hops; ++h) {
        chain.push_back(
            net.add_link(cap, 0.005, 260.0, packetsim::AqmKind::kDropTail));
      }
      net.add_flow(0.005, chain, scenario::make_packet_cca(kind, 500));
      for (std::size_t h = 0; h < hops; ++h) {
        net.add_flow(0.005, {chain[h]},
                     scenario::make_packet_cca(scenario::CcaKind::kReno,
                                               600 + h));
      }
      net.run(duration);
      const auto rates = net.mean_rates_pps();
      RunningStats e_cross;
      for (std::size_t i = 1; i < rates.size(); ++i) e_cross.add(rates[i]);

      table.add_row(
          {std::to_string(hops), scenario::to_string(kind),
           format_double(m_long / std::max(1.0, m_cross.mean()), 2),
           format_double(rates[0] / std::max(1.0, e_cross.mean()), 2)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  shape("Experiment: the long Reno flow collapses with hop count while long "
        "BBRv1 holds a stable share (rate-based probing tolerates multiple "
        "loss points). The fluid model under-predicts BBR's multi-hop share "
        "— Eq. (17) models delivery through a single static bottleneck, a "
        "known limitation this extension exposes (paper §8).");
  return 0;
}
