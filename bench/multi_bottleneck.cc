// Multi-bottleneck extension (paper §8: "it will be interesting to evaluate
// the BBR fluid models in multiple-bottleneck scenarios") — parking-lot
// sweep over hop counts.
//
// Expected shape (classic congestion-control theory + BBR literature): the
// long flow's share shrinks with the number of traversed bottlenecks for
// AIMD CCAs (multiplied loss probability, larger RTT), while BBR's
// rate-based probing degrades much more slowly.
//
// The (hops × CCA × simulator) grid runs through the sweep engine: each
// cell is an ad-hoc task (sweep::make_task) executed by a bench-local
// runner, so the cells fan across cores and inherit the engine's seeding
// contract. The hop count is decoded from the task index (not the spec),
// so the runner stays unnamed and uncacheable by construction.
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"
#include "core/engine.h"
#include "net/topology.h"
#include "packetsim/multihop.h"

int main() {
  using namespace bbrmodel;
  using namespace bbrmodel::bench;

  const double cap = mbps_to_pps(100.0);
  const double duration = fast_mode() ? 4.0 : 8.0;
  const std::vector<std::size_t> hop_counts = {1, 2, 3, 5};
  const std::vector<scenario::CcaKind> kinds = {scenario::CcaKind::kReno,
                                                scenario::CcaKind::kBbrv1,
                                                scenario::CcaKind::kBbrv2};

  // One task per (hops, long-flow CCA, simulator); the long flow's CCA
  // lives in the spec, hops in the captured axis.
  std::vector<sweep::SweepTask> tasks;
  for (std::size_t h = 0; h < hop_counts.size(); ++h) {
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      for (auto backend : {sweep::Backend::kFluid, sweep::Backend::kPacket}) {
        scenario::ExperimentSpec spec;
        spec.capacity_pps = cap;
        spec.duration_s = duration;
        spec.mix = scenario::homogeneous(kinds[k], 1);
        tasks.push_back(sweep::make_task(tasks.size(), backend, spec,
                                         /*base_seed=*/23));
      }
    }
  }

  sweep::SweepOptions options = bench_sweep_options(23);
  options.runner = {
      "", [&](const sweep::SweepTask& task) {
        const std::size_t hops = hop_counts[task.index / (kinds.size() * 2)];
        const auto kind = task.spec.mix.flows.front();
        const double cap_pps = task.spec.capacity_pps;
        const double t_end = task.spec.duration_s;
        metrics::AggregateMetrics m;

        if (task.backend == sweep::Backend::kFluid) {
          net::ParkingLotSpec spec;
          spec.num_hops = hops;
          spec.cross_flows_per_hop = 1;
          spec.hop_capacity_pps = cap_pps;
          const auto lot = net::make_parking_lot(spec);
          std::vector<std::unique_ptr<core::FluidCca>> agents;
          agents.push_back(scenario::make_fluid_cca(kind));
          for (std::size_t a = 1; a < lot.topology.num_agents(); ++a) {
            agents.push_back(
                scenario::make_fluid_cca(scenario::CcaKind::kReno));
          }
          core::FluidSimulation sim(lot.topology, std::move(agents), {});
          sim.run(t_end);
          for (std::size_t a = 0; a < lot.topology.num_agents(); ++a) {
            m.mean_rate_pps.push_back(sim.sent_pkts(a) / t_end);
          }
        } else {
          packetsim::MultiHopNet net(task.spec.seed);
          std::vector<std::size_t> chain;
          for (std::size_t h = 0; h < hops; ++h) {
            chain.push_back(net.add_link(cap_pps, 0.005, 260.0,
                                         packetsim::AqmKind::kDropTail));
          }
          net.add_flow(0.005, chain,
                       scenario::make_packet_cca(kind, task.spec.seed + 500));
          for (std::size_t h = 0; h < hops; ++h) {
            net.add_flow(0.005, {chain[h]},
                         scenario::make_packet_cca(scenario::CcaKind::kReno,
                                                   task.spec.seed + 600 + h));
          }
          net.run(t_end);
          m.mean_rate_pps = net.mean_rates_pps();
        }
        return m;
      }};
  const auto result = sweep::run_tasks(tasks, options);

  // Re-bin the task rows into the printed table: the long flow is rate 0,
  // the crosses are the rest.
  const auto long_over_cross = [](const metrics::AggregateMetrics& m) {
    RunningStats cross;
    for (std::size_t i = 1; i < m.mean_rate_pps.size(); ++i) {
      cross.add(m.mean_rate_pps[i]);
    }
    return m.mean_rate_pps.at(0) / std::max(1.0, cross.mean());
  };

  std::printf("%s", banner("Extension — parking lot: long-flow share vs "
                           "hop count").c_str());
  Table table({"hops", "CCA", "model long/cross", "exp long/cross"});
  for (std::size_t h = 0; h < hop_counts.size(); ++h) {
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      const std::size_t base = (h * kinds.size() + k) * 2;
      table.add_row(
          {std::to_string(hop_counts[h]), scenario::to_string(kinds[k]),
           format_double(long_over_cross(result.row(base).metrics), 2),
           format_double(long_over_cross(result.row(base + 1).metrics), 2)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  shape("Experiment: the long Reno flow collapses with hop count while long "
        "BBRv1 holds a stable share (rate-based probing tolerates multiple "
        "loss points). The fluid model under-predicts BBR's multi-hop share "
        "— Eq. (17) models delivery through a single static bottleneck, a "
        "known limitation this extension exposes (paper §8).");
  return 0;
}
