// Multi-bottleneck extension (paper §8: "it will be interesting to evaluate
// the BBR fluid models in multiple-bottleneck scenarios") — parking-lot
// sweep over hop counts.
//
// Expected shape (classic congestion-control theory + BBR literature): the
// long flow's share shrinks with the number of traversed bottlenecks for
// AIMD CCAs (multiplied loss probability, larger RTT), while BBR's
// rate-based probing degrades much more slowly.
//
// The (hops × CCA × simulator) grid runs through the sweep engine. Every
// coordinate lives in the spec — the hop count rides the flow-count axis
// (mix.flows.size() = hops), cross-flow RTTs ride flow_rtts_s — so the
// bench runner is a pure function of (spec, backend): named, cacheable,
// and usable as both the triage and the fine runner of an adaptive
// refinement. A second, adaptive section sweeps a denser hop axis under a
// Pareto cross-flow RTT distribution (--rtt-dist machinery) and refines
// only where the long flow's share moves.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <utility>
#include <vector>

#include "adaptive/refiner.h"
#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"
#include "core/engine.h"
#include "net/topology.h"
#include "packetsim/multihop.h"

namespace {

using namespace bbrmodel;

constexpr double kHopDelay = 0.005;     // one-way, per hop
constexpr double kAccessDelay = 0.005;  // long flow / default cross access

/// Long-flow rate over the mean cross rate of one finished cell.
double long_over_cross(const metrics::AggregateMetrics& m) {
  RunningStats cross;
  for (std::size_t i = 1; i < m.mean_rate_pps.size(); ++i) {
    cross.add(m.mean_rate_pps[i]);
  }
  return m.mean_rate_pps.at(0) / std::max(1.0, cross.mean());
}

/// One-way access delays of the cross flows: flow_rtts_s entries are total
/// RTTs (2·(access + hop)), the default spread means "same as the long
/// flow".
std::vector<double> cross_access_delays(const scenario::ExperimentSpec& spec,
                                        std::size_t hops) {
  std::vector<double> delays(hops, kAccessDelay);
  if (!spec.flow_rtts_s.empty()) {
    for (std::size_t h = 0; h < hops && h < spec.flow_rtts_s.size(); ++h) {
      delays[h] =
          std::max(0.0005, spec.flow_rtts_s[h] / 2.0 - kHopDelay);
    }
  }
  return delays;
}

/// Parking-lot runner: hop count = mix.flows.size(), long-flow CCA = the
/// mix kind, cross flows are Reno, per-cross access delays from
/// flow_rtts_s. A pure function of (spec, backend) — named so cells cache,
/// and aux carries the long/cross share for table re-binning and adaptive
/// scoring.
sweep::Runner parking_lot_runner() {
  return {"parking-lot", [](const sweep::SweepTask& task) {
            const std::size_t hops = task.spec.mix.flows.size();
            const auto kind = task.spec.mix.flows.front();
            const double cap_pps = task.spec.capacity_pps;
            const double t_end = task.spec.duration_s;
            const auto access = cross_access_delays(task.spec, hops);
            metrics::AggregateMetrics m;

            if (task.backend == sweep::Backend::kFluid) {
              net::ParkingLotSpec spec;
              spec.num_hops = hops;
              spec.cross_flows_per_hop = 1;
              spec.hop_capacity_pps = cap_pps;
              spec.hop_delay_s = kHopDelay;
              spec.access_delay_s = kAccessDelay;
              spec.cross_access_delays_s = access;
              const auto lot = net::make_parking_lot(spec);
              std::vector<std::unique_ptr<core::FluidCca>> agents;
              agents.push_back(scenario::make_fluid_cca(kind));
              for (std::size_t a = 1; a < lot.topology.num_agents(); ++a) {
                agents.push_back(
                    scenario::make_fluid_cca(scenario::CcaKind::kReno));
              }
              core::FluidSimulation sim(lot.topology, std::move(agents), {});
              sim.run(t_end);
              for (std::size_t a = 0; a < lot.topology.num_agents(); ++a) {
                m.mean_rate_pps.push_back(sim.sent_pkts(a) / t_end);
              }
            } else {
              packetsim::MultiHopNet net(task.spec.seed);
              std::vector<std::size_t> chain;
              for (std::size_t h = 0; h < hops; ++h) {
                chain.push_back(net.add_link(cap_pps, kHopDelay, 260.0,
                                             packetsim::AqmKind::kDropTail));
              }
              net.add_flow(kAccessDelay, chain,
                           scenario::make_packet_cca(kind,
                                                     task.spec.seed + 500));
              for (std::size_t h = 0; h < hops; ++h) {
                net.add_flow(
                    access[h], {chain[h]},
                    scenario::make_packet_cca(scenario::CcaKind::kReno,
                                              task.spec.seed + 600 + h));
              }
              net.run(t_end);
              m.mean_rate_pps = net.mean_rates_pps();
            }
            m.aux = {long_over_cross(m)};
            return m;
          }};
}

/// Hop-count grid: hops ride the flow-count axis; everything else is a
/// single value.
sweep::ParameterGrid hop_grid(std::vector<std::size_t> hop_counts,
                              scenario::CcaKind kind,
                              sweep::RttRange cross_rtts,
                              std::vector<sweep::Backend> backends) {
  sweep::ParameterGrid grid;
  grid.backends = std::move(backends);
  grid.disciplines = {net::Discipline::kDropTail};
  grid.buffers_bdp = {1.0};
  grid.flow_counts = std::move(hop_counts);
  grid.rtt_ranges = {cross_rtts};
  grid.mixes = {sweep::homogeneous_mix(kind)};
  return grid;
}

}  // namespace

int main() {
  using namespace bbrmodel::bench;

  const double cap = mbps_to_pps(100.0);
  const double duration = fast_mode() ? 4.0 : 8.0;
  const std::vector<std::size_t> hop_counts = {1, 2, 3, 5};
  const std::vector<scenario::CcaKind> kinds = {scenario::CcaKind::kReno,
                                                scenario::CcaKind::kBbrv1,
                                                scenario::CcaKind::kBbrv2};

  scenario::ExperimentSpec base;
  base.capacity_pps = cap;
  base.duration_s = duration;
  // The default spread: every cross flow shares the long flow's access
  // delay (uniform leaves flow_rtts_s empty).
  const sweep::RttRange same_rtt{2.0 * (kAccessDelay + kHopDelay),
                                 2.0 * (kAccessDelay + kHopDelay),
                                 sweep::RttDist::kUniform};

  // ---- Figure table: long-flow share vs hop count, per CCA ---------------
  sweep::SweepOptions options = bench_sweep_options(23);
  options.runner = parking_lot_runner();

  // (kind, hops, backend) → share; one grid per CCA keeps the mix axis
  // homogeneous (the runner reads the long flow's CCA from it).
  std::map<std::pair<std::size_t, std::size_t>, std::pair<double, double>>
      shares;  // (kind, hops) → (model, experiment)
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    const auto result = sweep::run_sweep(
        hop_grid(hop_counts, kinds[k], same_rtt,
                 {sweep::Backend::kFluid, sweep::Backend::kPacket}),
        base, options);
    for (const auto& row : result.rows()) {
      auto& cell = shares[{k, row.task.spec.mix.flows.size()}];
      (row.task.backend == sweep::Backend::kFluid ? cell.first
                                                  : cell.second) =
          row.metrics.aux.at(0);
    }
  }

  std::printf("%s", banner("Extension — parking lot: long-flow share vs "
                           "hop count").c_str());
  Table table({"hops", "CCA", "model long/cross", "exp long/cross"});
  for (const std::size_t hops : hop_counts) {
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      const auto& cell = shares.at({k, hops});
      table.add_row({std::to_string(hops), scenario::to_string(kinds[k]),
                     format_double(cell.first, 2),
                     format_double(cell.second, 2)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  // ---- Adaptive hop sweep under Pareto cross RTTs ------------------------
  // Asymmetric cross traffic (heavy-tailed RTTs in 20–100 ms) over a
  // denser hop axis, fluid model. The refiner triages a 3-point coarse
  // axis with a short-duration run of the same runner and subdivides the
  // hop intervals where the long Reno flow's share collapses.
  {
    const sweep::RttRange pareto_rtts{0.020, 0.100, sweep::RttDist::kPareto};
    const std::vector<std::size_t> dense_hops = {1, 2, 3, 4, 5, 6};
    scenario::ExperimentSpec abase = base;
    abase.duration_s = fast_mode() ? 3.0 : 6.0;

    sweep::SweepOptions fine = bench_sweep_options(23);
    fine.runner = parking_lot_runner();
    const auto dense = sweep::run_sweep(
        hop_grid(dense_hops, scenario::CcaKind::kReno, pareto_rtts,
                 {sweep::Backend::kFluid}),
        abase, fine);

    adaptive::RefinementPolicy policy;
    policy.metrics = {adaptive::RefineMetric::kAux0};  // long/cross share
    policy.aux_scale = 1.0;
    policy.threshold = 0.10;  // refine where the share moves by > 0.1
    policy.max_depth = 2;
    adaptive::GridRefiner refiner(
        hop_grid({1, 3, 6}, scenario::CcaKind::kReno, pareto_rtts,
                 {sweep::Backend::kFluid}),
        abase, policy);
    refiner.set_triage(parking_lot_runner());
    refiner.set_triage_transform([&](scenario::ExperimentSpec& spec) {
      spec.duration_s = fast_mode() ? 1.5 : 3.0;  // cheap triage runs
    });
    const auto plan = refiner.plan(bench_sweep_options(23));
    const auto refined = sweep::run_tasks(plan.tasks(23), fine);

    const auto curve = [](const sweep::SweepResult& result) {
      std::vector<std::pair<std::size_t, double>> points;
      for (const auto& row : result.rows()) {
        points.emplace_back(row.task.spec.mix.flows.size(),
                            row.metrics.aux.at(0));
      }
      std::sort(points.begin(), points.end());
      return points;
    };

    std::printf("%s", banner("Adaptive hop sweep — long Reno share under "
                             "Pareto cross RTTs (20-100 ms)").c_str());
    Table at({"hops", "dense long/cross", "adaptive long/cross"});
    const auto dense_curve = curve(dense);
    const auto refined_curve = curve(refined);
    for (const auto& [hops, share] : dense_curve) {
      std::string adaptive_share = "-";
      for (const auto& [ahops, ashare] : refined_curve) {
        if (ahops == hops) adaptive_share = format_double(ashare, 2);
      }
      at.add_row({std::to_string(hops), format_double(share, 2),
                  adaptive_share});
    }
    std::printf("%s\n", at.to_string().c_str());
    std::printf("adaptive evaluated %zu of %zu hop cells (%.0f%%), "
                "refined %zu round(s)\n\n",
                refined.size(), dense.size(),
                100.0 * static_cast<double>(refined.size()) /
                    static_cast<double>(dense.size()),
                plan.rounds);
  }

  shape("Experiment: the long Reno flow collapses with hop count while long "
        "BBRv1 holds a stable share (rate-based probing tolerates multiple "
        "loss points). The fluid model under-predicts BBR's multi-hop share "
        "— Eq. (17) models delivery through a single static bottleneck, a "
        "known limitation this extension exposes (paper §8). Heavy-tailed "
        "cross RTTs leave the collapse shape intact; the adaptive refiner "
        "resolves the collapse region without paying for the flat tail.");
  return 0;
}
