// Work-queue micro-benchmark: the packed segment store vs the legacy
// per-cell layout at 100k cells.
//
// Seeds, drains (claim → publish → finish), and collects the same plan
// through both layouts with a synthetic (instant) runner, so every
// second measured is queue overhead — the thing the segment store exists
// to remove. Prints a per-layout table and emits BENCH_queue.json with
// regression gates: segment seeding must stay well ahead of per-cell
// seeding, the drained segment queue must hold O(cells/segment)
// filesystem entries, and both layouts' collected CSVs must be
// byte-identical to the in-process run (a faster queue that changes the
// answers would be worthless).
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "common/table.h"
#include "common/units.h"
#include "metrics/aggregate.h"
#include "obs/log.h"
#include "orchestrator/execution_plan.h"
#include "orchestrator/work_queue.h"
#include "sweep/sweep.h"
#include "sweep/workloads.h"

namespace fs = std::filesystem;

int main() {
  using namespace bbrmodel;
  using namespace bbrmodel::bench;
  obs::set_log_program("perf_queue");

  const std::size_t cells = fast_mode() ? 10000 : 100000;
  const std::size_t segment_cells = 512;

  // The plan: one synthetic cell per buffer point, two mixes. The runner
  // is a pure function of the spec, so draining is pure queue work.
  sweep::ParameterGrid grid;
  grid.backends = {sweep::Backend::kFluid};
  grid.disciplines = {net::Discipline::kDropTail};
  grid.buffers_bdp.clear();
  for (std::size_t i = 0; i < cells / 2; ++i) {
    grid.buffers_bdp.push_back(0.001 * static_cast<double>(i + 1));
  }
  grid.flow_counts = {4};
  grid.rtt_ranges = {{0.030, 0.040}};
  grid.mixes = {sweep::homogeneous_mix(scenario::CcaKind::kBbrv1),
                sweep::half_half_mix(scenario::CcaKind::kBbrv1,
                                     scenario::CcaKind::kReno)};
  scenario::ExperimentSpec base = validation_spec();
  base.duration_s = 0.5;

  const auto runner =
      sweep::make_runner("synthetic", [](const sweep::SweepTask& task) {
        metrics::AggregateMetrics m;
        m.jain = 1.0;
        m.loss_pct = task.spec.buffer_bdp;
        m.occupancy_pct = static_cast<double>(task.spec.seed % 1000);
        m.utilization_pct = 100.0;
        m.jitter_ms = 0.25;
        m.mean_rate_pps = {task.spec.capacity_pps, 1.0 / 3.0};
        m.aux = {static_cast<double>(task.index)};
        return m;
      });

  const auto plan = orchestrator::ExecutionPlan::dense(grid, base, 42);
  std::printf("%s", banner("Work-queue layouts — " +
                           std::to_string(plan.size()) + " cells").c_str());

  sweep::SweepOptions reference_options;
  reference_options.runner = runner;
  std::ostringstream reference_csv;
  execute(plan, reference_options).write_csv(reference_csv);

  const auto wall_now = [] {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  };
  const auto count_files = [](const std::string& dir) {
    std::size_t n = 0;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (entry.is_regular_file()) ++n;
    }
    return n;
  };

  struct LayoutGauge {
    std::string name;
    double seed_s = 0.0;
    double drain_s = 0.0;
    double status_s = 0.0;   ///< one status snapshot mid-drain state
    double collect_s = 0.0;
    std::size_t files_seeded = 0;
    std::size_t files_drained = 0;
    std::string csv;
  };

  const auto run_layout = [&](const std::string& name,
                              std::size_t seed_segment_cells) {
    LayoutGauge g;
    g.name = name;
    const std::string dir = "BENCH_queue_" + name;
    fs::remove_all(dir);
    orchestrator::WorkQueue queue(dir, 60.0);

    double t0 = wall_now();
    queue.seed(plan, /*batch=*/1, seed_segment_cells);
    g.seed_s = wall_now() - t0;
    g.files_seeded = count_files(dir);

    // Drain the queue the way a worker does: claim a unit, publish each
    // member, drop the claim. Segment claims move whole 512-cell files;
    // per-cell claims rename one file per cell.
    t0 = wall_now();
    if (seed_segment_cells > 0) {
      while (auto claim =
                 queue.try_claim_batch("bench-w", seed_segment_cells)) {
        for (const std::size_t index : claim->indices) {
          sweep::TaskResult result;
          result.task = plan.cell(index);
          result.metrics = runner.run_one(result.task);
          queue.publish(result, "bench-w");
        }
        queue.finish(*claim);
      }
    } else {
      while (auto index = queue.try_claim("bench-w")) {
        sweep::TaskResult result;
        result.task = plan.cell(*index);
        result.metrics = runner.run_one(result.task);
        queue.complete(result, "bench-w");
      }
    }
    g.drain_s = wall_now() - t0;

    t0 = wall_now();
    const auto counters = queue.counters();
    g.status_s = wall_now() - t0;
    if (counters.done < plan.size()) {
      obs::log(obs::LogLevel::kError, "FAIL: %s drained %zu of %zu cells",
               name.c_str(), counters.done, plan.size());
      std::exit(1);
    }

    std::ostringstream csv;
    t0 = wall_now();
    collect_csv(queue, plan, csv);
    g.collect_s = wall_now() - t0;
    g.csv = csv.str();
    g.files_drained = count_files(dir);
    fs::remove_all(dir);
    return g;
  };

  const LayoutGauge segment = run_layout("segment", segment_cells);
  const LayoutGauge legacy = run_layout("per_cell", 0);

  const double n = static_cast<double>(plan.size());
  Table table({"layout", "seed[s]", "drain[s]", "drain cells/s",
               "status[ms]", "collect[s]", "files@seed", "files@drained"});
  for (const LayoutGauge* g : {&segment, &legacy}) {
    table.add_row({g->name, format_double(g->seed_s, 3),
                   format_double(g->drain_s, 3),
                   format_double(n / g->drain_s, 0),
                   format_double(g->status_s * 1e3, 3),
                   format_double(g->collect_s, 3),
                   std::to_string(g->files_seeded),
                   std::to_string(g->files_drained)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // ---- gates ---------------------------------------------------------------
  if (segment.csv != reference_csv.str() ||
      legacy.csv != reference_csv.str()) {
    obs::log(obs::LogLevel::kError,
             "FAIL: a queue layout's collected CSV drifted from the "
             "in-process run");
    return 1;
  }

  // Seed wall-time is dominated by plan serialization, which both
  // layouts pay identically, so the layout's own win (hundreds of
  // segment files vs one file per cell) shows up as a moderate total
  // ratio — the floor guards the store from regressing back to
  // per-cell cost, not the serializer.
  const double seed_speedup = legacy.seed_s / segment.seed_s;
  const double kMinSeedSpeedup = 1.5;
  if (!(seed_speedup >= kMinSeedSpeedup)) {
    obs::log(obs::LogLevel::kError,
             "FAIL: segment seeding only %.2fx faster than per-cell "
             "(need >= %.1fx at %zu cells)",
             seed_speedup, kMinSeedSpeedup, plan.size());
    return 1;
  }
  // The drain is pure queue work (the runner is instant): claims by
  // whole segments and log appends must stay well ahead of per-cell
  // renames and atomic result writes.
  const double drain_speedup = legacy.drain_s / segment.drain_s;
  const double kMinDrainSpeedup = 3.0;  // typically ~10x; floor vs noise
  if (!(drain_speedup >= kMinDrainSpeedup)) {
    obs::log(obs::LogLevel::kError,
             "FAIL: segment drain only %.2fx faster than per-cell "
             "(need >= %.1fx at %zu cells)",
             drain_speedup, kMinDrainSpeedup, plan.size());
    return 1;
  }

  // O(cells/segment) filesystem entries: the seeded segments plus a
  // constant-size spine (plan, lease, probe, counters, result log, stats,
  // checkpoint).
  const std::size_t file_budget =
      (plan.size() + segment_cells - 1) / segment_cells + 16;
  if (segment.files_seeded > file_budget ||
      segment.files_drained > file_budget) {
    obs::log(obs::LogLevel::kError,
             "FAIL: segment layout holds %zu/%zu files (seed/drained), "
             "budget %zu for %zu cells at %zu cells/segment",
             segment.files_seeded, segment.files_drained, file_budget,
             plan.size(), segment_cells);
    return 1;
  }
  if (segment.files_drained * 10 > legacy.files_drained) {
    obs::log(obs::LogLevel::kError,
             "FAIL: segment layout holds %zu files, not 10x under the "
             "per-cell layout's %zu",
             segment.files_drained, legacy.files_drained);
    return 1;
  }

  std::ofstream json_out("BENCH_queue.json");
  JsonWriter j(json_out);
  j.begin_object();
  j.key("bench").value("work_queue");
  j.key("cells").value(static_cast<std::uint64_t>(plan.size()));
  j.key("segment_cells").value(static_cast<std::uint64_t>(segment_cells));
  j.key("layouts").begin_object();
  for (const LayoutGauge* g : {&segment, &legacy}) {
    j.key(g->name).begin_object();
    j.key("seed_s").value(g->seed_s);
    j.key("drain_s").value(g->drain_s);
    j.key("drain_cells_per_s").value(n / g->drain_s);
    j.key("status_s").value(g->status_s);
    j.key("collect_s").value(g->collect_s);
    j.key("files_seeded").value(
        static_cast<std::uint64_t>(g->files_seeded));
    j.key("files_drained").value(
        static_cast<std::uint64_t>(g->files_drained));
    j.end_object();
  }
  j.end_object();
  j.key("seed_speedup").value(seed_speedup);
  j.key("drain_speedup").value(drain_speedup);
  j.key("file_budget").value(static_cast<std::uint64_t>(file_budget));
  j.key("deterministic").value(true);
  j.end_object();
  json_out << '\n';
  std::printf(
      "wrote BENCH_queue.json (seed %.1fx faster, %zu vs %zu files, "
      "status %.2f ms vs %.2f ms)\n",
      seed_speedup, segment.files_drained, legacy.files_drained,
      segment.status_s * 1e3, legacy.status_s * 1e3);

  shape("Packing pending work into claimable segments and appending "
        "results to per-worker logs turns the queue's O(cells) file "
        "creates and readdirs into O(cells/segment), so million-cell "
        "plans drain at engine speed with an O(1) status line.");
  return 0;
}
