// Fig. 2 — Visualization of the BBR fluid-model variables (single flow,
// link capacity normalized to 100 %): (a) BBRv1 rates, (b) BBRv2 rates and
// inflight limits.
//
// Paper shape: (a) the pacing pulses (5/4, 3/4) around x^btl with x^max
// tracking the delivery rate; (b) the REFILL→UP→DOWN→CRUISE excursion of
// rates and the w/w_hi/v interplay.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "metrics/series.h"

int main() {
  using namespace bbrmodel;
  using namespace bbrmodel::bench;

  // (a) BBRv1, 1 s.
  {
    scenario::ExperimentSpec spec = validation_spec();
    spec.mix = scenario::homogeneous(scenario::CcaKind::kBbrv1, 1);
    spec.min_rtt_s = 0.0312;
    spec.max_rtt_s = 0.0312;
    spec.buffer_bdp = 4.0;  // roomy buffer: pure pacing dynamics
    spec.duration_s = 1.0;
    spec.fluid.step_s = 10e-6;

    auto fluid = scenario::build_fluid(spec);
    fluid.sim->run(spec.duration_s);
    const auto& trace = fluid.sim->trace();
    const double cap = spec.capacity_pps;

    std::printf("%s", banner("Fig. 2a — BBRv1 fluid internals").c_str());
    Table t({"t[s]", "x[%C]", "x_dlv[%C]", "x_btl[%C]", "x_max[%C]"});
    const auto times = metrics::trace_times(trace);
    const auto x = metrics::rate_percent(trace, 0, cap);
    const auto dlv = metrics::delivery_percent(trace, 0, cap);
    const auto btl = metrics::btl_estimate_percent(trace, 0, cap);
    const auto max = metrics::max_measurement_percent(trace, 0, cap);
    const std::size_t f = std::max<std::size_t>(1, trace.size() / 25);
    for (std::size_t k = 0; k < trace.size(); k += f) {
      t.add_numeric_row(format_double(times[k], 3),
                        {x.values[k], dlv.values[k], btl.values[k],
                         max.values[k]},
                        1);
    }
    std::printf("%s\n", t.to_string().c_str());
  }

  // (b) BBRv2, 0.5 s: rates and inflight limits.
  {
    scenario::ExperimentSpec spec = validation_spec();
    spec.mix = scenario::homogeneous(scenario::CcaKind::kBbrv2, 1);
    spec.min_rtt_s = 0.0312;
    spec.max_rtt_s = 0.0312;
    spec.buffer_bdp = 4.0;
    spec.duration_s = 0.5;
    spec.fluid.step_s = 10e-6;

    auto fluid = scenario::build_fluid(spec);
    fluid.sim->run(spec.duration_s);
    const auto& trace = fluid.sim->trace();
    const double cap = spec.capacity_pps;
    const double bdp = fluid.bottleneck_bdp_pkts;

    std::printf("%s", banner("Fig. 2b — BBRv2 fluid internals").c_str());
    Table t({"t[s]", "x[%C]", "x_dlv[%C]", "x_btl[%C]", "w[%BDP]",
             "w_hi[%BDP]", "v[%BDP]"});
    const auto times = metrics::trace_times(trace);
    const auto x = metrics::rate_percent(trace, 0, cap);
    const auto dlv = metrics::delivery_percent(trace, 0, cap);
    const auto btl = metrics::btl_estimate_percent(trace, 0, cap);
    const auto w = metrics::cwnd_percent(trace, 0, bdp);
    const auto hi = metrics::inflight_hi_percent(trace, 0, bdp);
    const auto v = metrics::inflight_percent(trace, 0, bdp);
    const std::size_t f = std::max<std::size_t>(1, trace.size() / 25);
    for (std::size_t k = 0; k < trace.size(); k += f) {
      t.add_numeric_row(format_double(times[k], 3),
                        {x.values[k], dlv.values[k], btl.values[k],
                         w.values[k], hi.values[k], v.values[k]},
                        1);
    }
    std::printf("%s\n", t.to_string().c_str());
  }

  shape("BBRv1 shows 5/4 and 3/4 pacing pulses around x_btl; BBRv2 shows the "
        "refill/up/down/cruise excursion with v bounded by w_hi (Fig. 2).");
  return 0;
}
