// Theorems 1, 3, 4 — the closed-form equilibria of the reduced models,
// cross-checked against the nonlinear vector fields (residuals) and against
// convergent simulation of the reduced dynamics.
//
// Paper shape: Thm 1 — BBRv1 deep-buffer equilibria need queuing delay =
// propagation delay (q* = d·C); Thm 3 — shallow-buffer BBRv1 is perfectly
// fair at x* = 5C/(4N+1) with loss → 20 %; Thm 4 — BBRv2's fair equilibrium
// queue is (N−1)/(4N+1)·d·C, ≥75 % below BBRv1's.
//
// Both the theorem table (one task per N) and the convergence probes run
// through the sweep engine's custom-runner path: the N axis maps to the
// grid's flow-count axis, and each task's figure columns ride back in
// metrics.aux.
#include <cstdio>

#include "analysis/equilibrium.h"
#include "analysis/reduced_models.h"
#include "analysis/stability.h"
#include "bench_util.h"
#include "common/table.h"
#include "common/units.h"
#include "linalg/matrix.h"
#include "orchestrator/execution_plan.h"

int main() {
  using namespace bbrmodel;
  using namespace bbrmodel::bench;
  using namespace bbrmodel::analysis;

  const double cap = mbps_to_pps(100.0);
  const double d = 0.035;

  // ---- Theorem table: N sweeps through the grid's flow-count axis --------
  sweep::ParameterGrid grid;
  grid.backends = {sweep::Backend::kReduced};
  grid.disciplines = {net::Discipline::kDropTail};
  grid.buffers_bdp = {1.0};
  grid.flow_counts = {1, 2, 3, 5, 10, 20, 50};
  grid.rtt_ranges = {{d, d}};
  grid.mixes = {sweep::homogeneous_mix(scenario::CcaKind::kBbrv1)};

  // Everything below is a pure function of the spec (N from the mix, d from
  // the RTT range, C from the capacity), so the runner is named and its
  // cells are cacheable.
  sweep::SweepOptions options = bench_sweep_options(42);
  options.runner = sweep::make_runner(
      "theory-equilibria", [](const sweep::SweepTask& task) {
        const std::size_t n = task.spec.mix.flows.size();
        const auto s = BottleneckScenario::uniform(
            n, task.spec.capacity_pps, task.spec.min_rtt_s);
        const auto deep = bbrv1_deep_equilibrium(s);
        const auto shallow = bbrv1_shallow_equilibrium(s);
        const auto v2 = bbrv2_equilibrium(s);

        // Residuals of all three reduced vector fields at their equilibria.
        double residual = 0.0;
        for (double r : eval_rhs(bbrv1_reduced_rhs(s),
                                 bbrv1_deep_equilibrium_state(s))) {
          residual = std::max(residual, std::abs(r));
        }
        for (double r : eval_rhs(bbrv1_shallow_rhs(s),
                                 bbrv1_shallow_equilibrium_state(s))) {
          residual = std::max(residual, std::abs(r));
        }
        for (double r :
             eval_rhs(bbrv2_reduced_rhs(s), bbrv2_equilibrium_state(s))) {
          residual = std::max(residual, std::abs(r));
        }

        metrics::AggregateMetrics m;
        const double cap_pps = task.spec.capacity_pps;
        m.aux = {deep.queue_pkts,
                 100.0 * shallow.btl_pps / cap_pps,
                 100.0 * shallow.loss_rate,
                 v2.queue_pkts,
                 100.0 * v2.rate_pps / cap_pps,
                 100.0 * bbrv2_buffer_reduction(n),
                 residual};
        return m;
      });

  scenario::ExperimentSpec base;
  base.capacity_pps = cap;
  const auto result = sweep::run_sweep(grid, base, options);

  std::printf("%s", banner("Theorem 1/3/4 — equilibria (C = 100 Mbps, "
                           "d = 35 ms)").c_str());
  Table t({"N", "Thm1 q*[pkts]", "Thm3 x*[%C]", "Thm3 loss[%]",
           "Thm4 q*[pkts]", "Thm4 x*[%C]", "v2 queue cut[%]",
           "max |residual|"});
  for (const auto& row : result.rows()) {
    t.add_numeric_row(std::to_string(row.task.spec.mix.flows.size()),
                      row.metrics.aux, 3);
  }
  std::printf("%s\n", t.to_string().c_str());

  // ---- Convergence probes: three ad-hoc tasks, one per reduced system ----
  // The probed system is bench-local (decoded from the task index), so this
  // runner stays unnamed — its cells must never enter the cache.
  std::printf("%s", banner("Convergence probes (reduced models, RK4)").c_str());
  std::vector<sweep::SweepTask> probes;
  for (std::size_t i = 0; i < 3; ++i) {
    scenario::ExperimentSpec spec = base;
    spec.mix = scenario::homogeneous(scenario::CcaKind::kBbrv1, 10);
    spec.min_rtt_s = spec.max_rtt_s = d;
    probes.push_back(
        sweep::make_task(i, sweep::Backend::kReduced, spec, /*base_seed=*/42));
  }
  sweep::SweepOptions probe_options = bench_sweep_options(42);
  probe_options.runner = sweep::make_runner(
      "", [cap, d](const sweep::SweepTask& task) {
        const auto s = BottleneckScenario::uniform(10, cap, d);
        ConvergenceProbe p;
        switch (task.index) {
          case 0:
            p = probe_convergence(bbrv1_aggregate_rhs(s), {cap, d * cap},
                                  0.25, 6.0, 1e-4);
            break;
          case 1:
            p = probe_convergence(bbrv1_shallow_rhs(s),
                                  bbrv1_shallow_equilibrium_state(s), 0.3,
                                  300.0, 5e-3);
            break;
          default:
            p = probe_convergence(bbrv2_reduced_rhs(s),
                                  bbrv2_equilibrium_state(s), 0.2, 300.0,
                                  5e-3);
        }
        metrics::AggregateMetrics m;
        m.aux = {p.initial_distance, p.final_distance,
                 p.converged ? 1.0 : 0.0};
        return m;
      });
  const auto probed = orchestrator::execute(
      orchestrator::ExecutionPlan::from_tasks(std::move(probes)),
      probe_options);

  const char* names[] = {"BBRv1 aggregate (Thm 2)", "BBRv1 shallow (Thm 3)",
                         "BBRv2 (Thm 4/5)"};
  const char* perturbs[] = {"25%", "30%", "20%"};
  const char* horizons[] = {"6", "300", "300"};
  Table c({"system", "N", "perturb", "t_end[s]", "dist(0)", "dist(T)",
           "converged"});
  for (std::size_t i = 0; i < probed.size(); ++i) {
    const auto& aux = probed.row(i).metrics.aux;
    c.add_row({names[i], "10", perturbs[i], horizons[i],
               format_double(aux[0], 1), format_double(aux[1], 3),
               aux[2] > 0.5 ? "yes" : "NO"});
  }
  std::printf("%s\n", c.to_string().c_str());

  shape("Closed-form equilibria are fixed points (residual ≈ 0) and "
        "attractors of the reduced dynamics; the BBRv2 queue cut is ≥75 % "
        "(Theorems 1, 3, 4).");
  return 0;
}
