// Theorems 1, 3, 4 — the closed-form equilibria of the reduced models,
// cross-checked against the nonlinear vector fields (residuals) and against
// convergent simulation of the reduced dynamics.
//
// Paper shape: Thm 1 — BBRv1 deep-buffer equilibria need queuing delay =
// propagation delay (q* = d·C); Thm 3 — shallow-buffer BBRv1 is perfectly
// fair at x* = 5C/(4N+1) with loss → 20 %; Thm 4 — BBRv2's fair equilibrium
// queue is (N−1)/(4N+1)·d·C, ≥75 % below BBRv1's.
#include <cstdio>

#include "analysis/equilibrium.h"
#include "analysis/reduced_models.h"
#include "analysis/stability.h"
#include "bench_util.h"
#include "common/table.h"
#include "common/units.h"
#include "linalg/matrix.h"

int main() {
  using namespace bbrmodel;
  using namespace bbrmodel::bench;
  using namespace bbrmodel::analysis;

  const double cap = mbps_to_pps(100.0);
  const double d = 0.035;

  std::printf("%s", banner("Theorem 1/3/4 — equilibria (C = 100 Mbps, "
                           "d = 35 ms)").c_str());
  Table t({"N", "Thm1 q*[pkts]", "Thm3 x*[%C]", "Thm3 loss[%]",
           "Thm4 q*[pkts]", "Thm4 x*[%C]", "v2 queue cut[%]",
           "max |residual|"});
  for (std::size_t n : {1u, 2u, 3u, 5u, 10u, 20u, 50u}) {
    const auto s = BottleneckScenario::uniform(n, cap, d);
    const auto deep = bbrv1_deep_equilibrium(s);
    const auto shallow = bbrv1_shallow_equilibrium(s);
    const auto v2 = bbrv2_equilibrium(s);

    // Residuals of all three reduced vector fields at their equilibria.
    double residual = 0.0;
    for (double r : eval_rhs(bbrv1_reduced_rhs(s),
                             bbrv1_deep_equilibrium_state(s))) {
      residual = std::max(residual, std::abs(r));
    }
    for (double r : eval_rhs(bbrv1_shallow_rhs(s),
                             bbrv1_shallow_equilibrium_state(s))) {
      residual = std::max(residual, std::abs(r));
    }
    for (double r : eval_rhs(bbrv2_reduced_rhs(s), bbrv2_equilibrium_state(s))) {
      residual = std::max(residual, std::abs(r));
    }

    t.add_numeric_row(
        std::to_string(n),
        {deep.queue_pkts, 100.0 * shallow.btl_pps / cap,
         100.0 * shallow.loss_rate, v2.queue_pkts, 100.0 * v2.rate_pps / cap,
         100.0 * bbrv2_buffer_reduction(n), residual},
        3);
  }
  std::printf("%s\n", t.to_string().c_str());

  // Convergent simulation of the reduced dynamics from perturbed starts.
  std::printf("%s", banner("Convergence probes (reduced models, RK4)").c_str());
  Table c({"system", "N", "perturb", "t_end[s]", "dist(0)", "dist(T)",
           "converged"});
  {
    const auto s = BottleneckScenario::uniform(10, cap, d);
    const auto p = probe_convergence(bbrv1_aggregate_rhs(s), {cap, d * cap},
                                     0.25, 6.0, 1e-4);
    c.add_row({"BBRv1 aggregate (Thm 2)", "10", "25%", "6",
               format_double(p.initial_distance, 1),
               format_double(p.final_distance, 3),
               p.converged ? "yes" : "NO"});
  }
  {
    const auto s = BottleneckScenario::uniform(10, cap, d);
    const auto p = probe_convergence(bbrv1_shallow_rhs(s),
                                     bbrv1_shallow_equilibrium_state(s), 0.3,
                                     300.0, 5e-3);
    c.add_row({"BBRv1 shallow (Thm 3)", "10", "30%", "300",
               format_double(p.initial_distance, 1),
               format_double(p.final_distance, 3),
               p.converged ? "yes" : "NO"});
  }
  {
    const auto s = BottleneckScenario::uniform(10, cap, d);
    const auto p = probe_convergence(bbrv2_reduced_rhs(s),
                                     bbrv2_equilibrium_state(s), 0.2, 300.0,
                                     5e-3);
    c.add_row({"BBRv2 (Thm 4/5)", "10", "20%", "300",
               format_double(p.initial_distance, 1),
               format_double(p.final_distance, 3),
               p.converged ? "yes" : "NO"});
  }
  std::printf("%s\n", c.to_string().c_str());

  shape("Closed-form equilibria are fixed points (residual ≈ 0) and "
        "attractors of the reduced dynamics; the BBRv2 queue cut is ≥75 % "
        "(Theorems 1, 3, 4).");
  return 0;
}
