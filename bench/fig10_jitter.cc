// Fig. 10 — Jitter validation: mean delay difference between consecutive
// packets [ms] vs buffer size.
//
// Paper shape: the fluid model *fails* to predict jitter (it abstracts away
// per-packet fluctuations); the experiment shows ~0.0–0.6 ms. This bench
// reproduces the failure mode deliberately — the model column sits far
// below the experiment column.
#include "bench_util.h"

int main() {
  using namespace bbrmodel;
  using namespace bbrmodel::bench;
  run_aggregate_figure(
      "Fig. 10 — Jitter [ms]",
      [](const metrics::AggregateMetrics& m) { return m.jitter_ms; }, 3,
      validation_spec());
  shape("The fluid model's virtual-packet jitter is a flat underestimate of "
        "the experiment's packet-level jitter — the paper's stated fluid-"
        "model limitation (Fig. 10, Insight 9).");
  return 0;
}
