// Fig. 1 — Competition of sending rates between a Reno flow and a BBRv1
// flow (in % of link bandwidth), fluid model vs packet experiment.
//
// Paper shape: BBRv1 claims the dominant share within seconds while Reno is
// suppressed far below its fair half.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "common/units.h"
#include "metrics/series.h"

int main() {
  using namespace bbrmodel;
  using namespace bbrmodel::bench;

  scenario::ExperimentSpec spec = validation_spec();
  spec.mix = scenario::half_half(scenario::CcaKind::kBbrv1,
                                 scenario::CcaKind::kReno, 2);
  spec.min_rtt_s = 0.0312;
  spec.max_rtt_s = 0.0312;
  spec.buffer_bdp = 1.0;
  spec.duration_s = 10.0;

  std::printf("%s", banner("Fig. 1 — Reno vs BBRv1 sending rates").c_str());

  auto fluid = scenario::build_fluid(spec);
  fluid.sim->run(spec.duration_s);
  const auto& trace = fluid.sim->trace();
  const auto bbr = metrics::rate_percent(trace, 0, spec.capacity_pps);
  const auto reno = metrics::rate_percent(trace, 1, spec.capacity_pps);
  const auto times = metrics::trace_times(trace);
  const std::size_t factor = std::max<std::size_t>(1, trace.size() / 20);

  Table model({"t[s]", "BBRv1[%C]", "Reno[%C]"});
  const auto t_ds = metrics::downsample(times, factor);
  const auto b_ds = metrics::downsample(bbr.values, factor);
  const auto r_ds = metrics::downsample(reno.values, factor);
  for (std::size_t k = 0; k < t_ds.size(); ++k) {
    model.add_numeric_row(format_double(t_ds[k], 2), {b_ds[k], r_ds[k]}, 1);
  }
  std::printf("Model:\n%s\n", model.to_string().c_str());

  auto packet = scenario::build_packet(spec);
  packet.net->run(spec.duration_s);
  Table experiment({"t[s]", "BBRv1[%C]", "Reno[%C]"});
  const auto& rows = packet.net->trace().rows;
  const std::size_t pfactor = std::max<std::size_t>(1, rows.size() / 20);
  for (std::size_t k = 0; k < rows.size(); k += pfactor) {
    experiment.add_numeric_row(
        format_double(rows[k].t, 2),
        {100.0 * rows[k].flow_rate_pps[0] / spec.capacity_pps,
         100.0 * rows[k].flow_rate_pps[1] / spec.capacity_pps},
        1);
  }
  std::printf("Experiment:\n%s\n", experiment.to_string().c_str());

  const auto m = metrics::evaluate_fluid(*fluid.sim, fluid.bottleneck_link);
  const auto e = packet.net->aggregate_metrics();
  const double mr = m.mean_rate_pps[0] / std::max(1.0, m.mean_rate_pps[1]);
  const double er = e.mean_rate_pps[0] / std::max(1.0, e.mean_rate_pps[1]);
  std::printf("mean-rate ratio BBRv1/Reno: model %.2f, experiment %.2f\n",
              mr, er);
  shape("BBRv1 suppresses the competing Reno flow in both the model and the "
        "experiment (ratio > 1), as in Fig. 1.");
  return 0;
}
