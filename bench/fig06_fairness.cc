// Fig. 6 — Fairness validation: Jain index vs buffer size (1–7 BDP) for the
// seven CCA mixes, drop-tail and RED, model vs experiment.
//
// Paper shape: lowest fairness where BBRv1 meets loss-sensitive CCAs in
// shallow drop-tail buffers; improving from ≈4 BDP; consistently low under
// RED; BBRv2 mixes far fairer.
#include "bench_util.h"

int main() {
  using namespace bbrmodel;
  using namespace bbrmodel::bench;
  run_aggregate_figure(
      "Fig. 6 — Jain fairness",
      [](const metrics::AggregateMetrics& m) { return m.jain; }, 3,
      validation_spec());
  shape("BBRv1 vs loss-based mixes are the least fair rows (esp. shallow "
        "drop-tail and all RED sizes); homogeneous and BBRv2 mixes stay "
        "near 1 (Fig. 6).");
  return 0;
}
