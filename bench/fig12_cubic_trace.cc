// Fig. 12 — CUBIC trace validation: one flow, 30 s, drop-tail and RED.
//
// Paper shape: the cubic concave/convex window pattern, faster buffer refill
// than Reno, small loss; under RED the queue stays small.
#include "bench_util.h"

int main() {
  using namespace bbrmodel;
  using namespace bbrmodel::bench;
  const double duration = fast_mode() ? 12.0 : 30.0;
  run_trace_figure("Fig. 12 — CUBIC trace validation",
                   scenario::CcaKind::kCubic, net::Discipline::kDropTail,
                   duration, 20);
  run_trace_figure("Fig. 12 — CUBIC trace validation",
                   scenario::CcaKind::kCubic, net::Discipline::kRed, duration,
                   20);
  shape("CUBIC refills the drop-tail buffer with the cubic pattern and stays "
        "low-queue under RED (Fig. 12).");
  return 0;
}
