// Fig. 11 — Reno trace validation: one flow, 30 s, drop-tail and RED.
//
// Paper shape: the sawtooth; under drop-tail the rate decouples from window
// growth once the buffer fills; under RED the rate never exceeds the
// bottleneck and the queue stays small.
#include "bench_util.h"

int main() {
  using namespace bbrmodel;
  using namespace bbrmodel::bench;
  const double duration = fast_mode() ? 12.0 : 30.0;
  run_trace_figure("Fig. 11 — Reno trace validation",
                   scenario::CcaKind::kReno, net::Discipline::kDropTail,
                   duration, 20);
  run_trace_figure("Fig. 11 — Reno trace validation",
                   scenario::CcaKind::kReno, net::Discipline::kRed, duration,
                   20);
  shape("Reno saws between buffer-fill and halving under drop-tail; under "
        "RED the queue and rate stay lower (Fig. 11).");
  return 0;
}
